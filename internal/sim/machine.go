package sim

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"pathfinder/internal/cxl"
	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

// Machine is the assembled server: cores, CHA/LLC slices, memory
// controllers, the CXL ports, and the event engine, bound to an address
// space that decides where each line lives.
type Machine struct {
	cfg Config
	eng *Engine
	as  *mem.AddressSpace

	cores  []*Core
	slices []*chaSlice
	imc    []*imcChannel
	ports  []*cxlPort

	// Cross-socket memory: the remote socket's IMC channels, reached over
	// the UPI link (remoteBus models the link bandwidth).
	remoteIMC []*imcChannel
	remoteBus server

	banks      []*pmu.Bank
	bankByName map[string]*pmu.Bank

	lastSync Cycles

	// accessHook, when set, observes every request that reaches a memory
	// device (an LLC miss) — the signal memory-tiering policies sample.
	accessHook func(core int, lineAddr uint64, write bool)

	// tr is the attached request-path tracer (nil when tracing is off);
	// cur is the record of the demand op currently executing, set only for
	// the synchronous extent of one sampled coreStep.
	tr  *obs.Tracer
	cur *obs.ReqRec

	// fl is the attached flight recorder (nil when detached).  Unlike the
	// sampled tracer it observes every demand load and store completion,
	// filing packed records from the functional timing path — inline when
	// the engine owns the clock, deferred through per-core pending buffers
	// when window lanes are running (see the barrier in window.go).
	fl *obs.Flight

	// Window-parallel scheduling (see window.go).  lanes selects the mode:
	// <0 forces every core step through the event engine (the golden-test
	// baseline), 0 is auto (windowed; parallel lanes iff GOMAXPROCS>1),
	// 1 is the windowed sequential sweep, >1 caps the parallel lane count.
	lanes int
	sched *laneSched
	wstat WindowStats

	// compTable is the reusable component-table scratch for checkpoint
	// restore (see checkpoint.go); keeping it on the machine makes
	// RestoreInto allocation-free in steady state.
	compTable []any
}

// New assembles a machine from cfg over the given address space.
func New(cfg Config, as *mem.AddressSpace) *Machine {
	cfg.validate()
	m := &Machine{
		cfg:        cfg,
		eng:        NewEngine(),
		as:         as,
		remoteBus:  server{service: cfg.serviceCycles(cfg.RemoteDRAMGBs)},
		bankByName: make(map[string]*pmu.Bank),
	}
	m.eng.mach = m
	addBank := func(name string) *pmu.Bank {
		b := pmu.NewBank(pmu.Default, name)
		m.banks = append(m.banks, b)
		m.bankByName[name] = b
		return b
	}

	clusters := cfg.SNCClusters
	if clusters < 1 {
		clusters = 1
	}
	coresPerCluster := (cfg.Cores + clusters - 1) / clusters
	for i := 0; i < cfg.Cores; i++ {
		b := addBank(fmt.Sprintf("core%d", i))
		m.cores = append(m.cores, newCore(i, i/coresPerCluster, &cfg, b))
	}
	slicesPerCluster := cfg.LLCSlices / clusters
	sliceBytes := cfg.LLCSize / cfg.LLCSlices
	for i := 0; i < cfg.LLCSlices; i++ {
		b := addBank(fmt.Sprintf("cha%d", i))
		m.slices = append(m.slices, newCHASlice(i, i/slicesPerCluster, sliceBytes, cfg.LLCWays, b))
	}
	chanService := cfg.serviceCycles(cfg.DRAMChanGBs)
	for i := 0; i < cfg.DRAMChannels; i++ {
		b := addBank(fmt.Sprintf("imc%d", i))
		m.imc = append(m.imc, newIMCChannel(b, chanService, cfg.DRAMLat, cfg.RPQEntries, cfg.WPQEntries))
	}
	if cfg.Sockets > 1 {
		for i := 0; i < cfg.DRAMChannels; i++ {
			b := addBank(fmt.Sprintf("rimc%d", i))
			m.remoteIMC = append(m.remoteIMC, newIMCChannel(b, chanService, cfg.DRAMLat, cfg.RPQEntries, cfg.WPQEntries))
		}
	}
	for i := 0; i < cfg.CXLDevices; i++ {
		mb := addBank(fmt.Sprintf("m2pcie%d", i))
		db := addBank(fmt.Sprintf("cxl%d", i))
		m.ports = append(m.ports, newCXLPort(&m.cfg, mb, db))
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// AddressSpace returns the machine's memory map.
func (m *Machine) AddressSpace() *mem.AddressSpace { return m.as }

// Now returns the current simulated cycle.
func (m *Machine) Now() Cycles { return m.eng.Now() }

// Banks returns every PMU bank of the machine.
func (m *Machine) Banks() []*pmu.Bank { return m.banks }

// Bank returns the bank of the named module instance (e.g. "core3",
// "cha0", "imc1", "m2pcie0", "cxl0").  Asking for a bank the machine was
// not configured with is a rig bug and panics with the offending name, so
// misconfigured experiments fail descriptively instead of dereferencing
// nil.
func (m *Machine) Bank(name string) *pmu.Bank {
	b, ok := m.bankByName[name]
	if !ok {
		names := make([]string, 0, len(m.bankByName))
		for n := range m.bankByName {
			names = append(names, n)
		}
		sort.Strings(names)
		panic(fmt.Sprintf("sim: machine %q has no PMU bank %q (have: %s)",
			m.cfg.Name, name, strings.Join(names, ", ")))
	}
	return b
}

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Cores returns the number of cores.
func (m *Machine) Cores() int { return len(m.cores) }

// Attach binds a workload generator to core i and starts it.  Attaching to
// a busy core replaces its generator (thread migration).
func (m *Machine) Attach(i int, gen workload.Generator) {
	c := m.cores[i]
	wasRunning := c.running
	c.gen = gen
	c.running = gen != nil
	c.opPending = false
	if c.running && !wasRunning {
		if m.windowed() {
			m.armStep(c, m.eng.Now())
		} else {
			m.eng.at(m.eng.Now(), evCoreStep, c, 0, 0)
		}
	}
}

// Detach stops the workload on core i.
func (m *Machine) Detach(i int) {
	c := m.cores[i]
	c.gen = nil
	c.running = false
	c.opPending = false
	c.stepPending = false
}

// Run advances the simulation by d cycles.
func (m *Machine) Run(d Cycles) {
	if m.windowed() {
		m.runWindowed(m.eng.Now() + d)
		return
	}
	m.eng.RunUntil(m.eng.Now() + d)
}

// Sync flushes all occupancy/busy trackers and clocktick counters to the
// current cycle so that an immediate snapshot of the banks is consistent.
// The profiler calls this at every scheduling-epoch boundary.
func (m *Machine) Sync() {
	now := m.eng.Now()
	m.eng.drainObs(now)
	d := now - m.lastSync
	m.lastSync = now
	for _, c := range m.cores {
		c.sync(now)
	}
	for _, s := range m.slices {
		s.sync(now)
		s.bank.Add(pmu.CHAClockticks, d)
	}
	for _, ch := range m.imc {
		ch.sync(now)
		ch.bank.Add(pmu.IMCClockticks, d)
	}
	for _, ch := range m.remoteIMC {
		ch.sync(now)
		ch.bank.Add(pmu.IMCClockticks, d)
	}
	for _, p := range m.ports {
		p.sync(now)
		p.m2pBank.Add(pmu.M2PClockticks, d)
		p.devBank.Add(pmu.CXLClockticks, d)
	}
}

// ---------------------------------------------------------------------------
// Core instruction stepping.
// ---------------------------------------------------------------------------

// coreStep executes workload ops on core c, starting at cycle now.
//
// After each op it computes the core's continuation cycle `next` and —
// instead of unconditionally scheduling an evCoreStep and round-tripping
// through the engine — keeps executing inline, advancing the clock
// directly, for as long as (a) no other live event (wheel or heap) is
// scheduled at or before `next`, (b) `next` stays within the active
// RunUntil horizon, and (c) the op was not sampled by the tracer.  The
// fast path only fires when the core step would have been the globally
// next event anyway, so the op/event interleaving — and every PMU
// counter, occupancy integral, and trace span derived from it — is
// identical to the event-driven path by construction (pinned by the
// fast-path golden digest suite).  Hit-dominated op runs thus cost no
// engine round-trips; misses bail out on their own same-cycle events.
func (m *Machine) coreStep(c *Core, now Cycles) {
	eng := m.eng
	for {
		next, sampled, ok := m.stepOne(c, now)
		if !ok {
			return
		}
		if eng.runAhead && next <= eng.horizon && !sampled && eng.quietUntil(next) {
			eng.now = next
			eng.inlineSteps++
			// Apply observer entries due by the new cycle before the next
			// op, exactly as the dispatch loop would have; keeping the
			// observer wheel near-empty also keeps its buckets cache-hot.
			eng.drainObs(next)
			now = next
			continue
		}
		eng.at(next, evCoreStep, c, 0, 0)
		return
	}
}

// stepOne executes exactly one workload op on core c at cycle now, returning
// the core's continuation cycle.  It consumes the classifier's op stash when
// one is pending (a window bail-out) so no op is ever skipped or repeated.
// ok is false when the core has stopped (no op was executed); the caller
// owns rescheduling.
func (m *Machine) stepOne(c *Core, now Cycles) (next Cycles, sampled, ok bool) {
	if !c.running || c.gen == nil {
		return 0, false, false
	}
	if c.opPending {
		c.opPending = false
	} else if !c.gen.Next(&c.op) {
		c.running = false
		return 0, false, false
	}
	op := &c.op
	t := now + Cycles(op.Think)
	c.bank.Add(pmu.InstRetiredAny, uint64(op.Think)+1)

	switch op.Kind {
	case workload.Load:
		if tr := m.tr; tr != nil && tr.Sample() {
			sampled = true
			m.cur = tr.Begin(c.id, op.Addr, "DRd")
			next = m.load(c, op.Addr, t, op.Dep)
			tr.Commit(m.cur)
			m.cur = nil
		} else {
			next = m.load(c, op.Addr, t, op.Dep)
		}
	case workload.Store:
		if tr := m.tr; tr != nil && tr.Sample() {
			sampled = true
			m.cur = tr.Begin(c.id, op.Addr, "DWr")
			next = m.store(c, op.Addr, t)
			tr.Commit(m.cur)
			m.cur = nil
		} else {
			next = m.store(c, op.Addr, t)
		}
	case workload.Prefetch:
		m.swPrefetch(c, op.Addr, t)
		next = t + 1
	default:
		next = t + 1
	}
	if next <= now {
		next = now + 1
	}
	c.bank.Add(pmu.CPUClkUnhalted, next-now)
	return next, sampled, true
}

// load executes a demand load issued at t, returning when the core may
// continue (the data-return time for dependent loads, the issue slot
// otherwise).
func (m *Machine) load(c *Core, addr uint64, t Cycles, dep bool) Cycles {
	la := mem.LineAddr(addr)
	c.bank.Inc(pmu.MemInstAllLoads)

	// L1D.
	if c.l1.Lookup(la) != nil {
		c.bank.Inc(pmu.MemLoadL1Hit)
		c.bank.Add(pmu.MemTransLoadLatency, uint64(m.cfg.L1Lat))
		c.bank.Inc(pmu.MemTransLoadCount)
		if rec := m.cur; rec != nil {
			rec.Span(obs.StageReq, t, t+m.cfg.L1Lat)
			rec.Loc = SrvL1.String()
			rec.SealMem() // trainL1PF below may visit memory devices
		}
		m.trainL1PF(c, la, t)
		if m.fl.Enabled() {
			m.flightDone(c, obs.FlightLoad, addr, t, t+m.cfg.L1Lat, SrvL1, nil)
		}
		return t + 1
	}
	c.bank.Inc(pmu.MemLoadL1Miss)

	// LFB merge with an in-flight miss to the same line.
	if e := c.findLFB(la, t); e != nil {
		c.bank.Inc(pmu.MemLoadFBHit)
		c.bank.Add(pmu.MemTransLoadLatency, uint64(e.done-t))
		c.bank.Inc(pmu.MemTransLoadCount)
		if rec := m.cur; rec != nil {
			rec.Span(obs.StageLFB, t, e.done)
			rec.Span(obs.StageReq, t, e.done)
			rec.Loc = SrvLFB.String()
			rec.SealMem()
		}
		m.trainL1PF(c, la, t)
		if m.fl.Enabled() {
			// Stage times belong to the merged-into miss, which may predate
			// this load's issue — record the merge latency alone.
			m.flightDone(c, obs.FlightLoad, addr, t, e.done, SrvLFB, nil)
		}
		if dep {
			res := accessResult{done: e.done, loc: SrvLFB, times: e.times,
				missedL2: e.missedL2, missedLLC: e.missedLLC}
			c.attributeLoadStall(t, e.done, &res)
			return e.done
		}
		return t + 1
	}

	res := m.missPath(c, ClassDRd, la, t)
	c.bank.Add(pmu.MemTransLoadLatency, uint64(res.done-t))
	c.bank.Inc(pmu.MemTransLoadCount)
	if rec := m.cur; rec != nil {
		rec.Span(obs.StageReq, t, res.done)
		rec.Loc = res.loc.String()
	}
	m.trainL1PF(c, la, t)
	if m.fl.Enabled() {
		m.flightDone(c, obs.FlightLoad, addr, t, res.done, res.loc, &res.times)
	}

	if dep {
		c.attributeLoadStall(t, res.done, &res)
		return res.done
	}
	// Independent load: the core proceeds once the LFB slot was obtained.
	cont := res.times.issue // missPath sets issue to the post-wait slot time
	if cont > t {
		waited := accessResult{done: cont, loc: res.loc, times: res.times,
			missedL2: res.missedL2, missedLLC: res.missedLLC}
		c.attributeLoadStall(t, cont, &waited)
	}
	return cont + 1
}

// missPath takes a request that missed the L1D (and has no LFB merge)
// through LFB allocation and the L2-and-below hierarchy.  It applies to
// demand reads, software prefetches, L1 hardware prefetches, and RFOs —
// everything that occupies a line-fill-buffer entry.
func (m *Machine) missPath(c *Core, class ReqClass, la uint64, t Cycles) accessResult {
	start, waitedOn, fbWaited := c.allocLFB(t, m.cfg.LFBEntries)
	if rec := m.demandRec(class); rec != nil && start > t {
		rec.Span(obs.StageLFB, t, start)
	}
	if fbWaited && class == ClassDRd {
		blocked := accessResult{done: start, loc: SrvLFB, times: waitedOn.times,
			missedL2: waitedOn.missedL2, missedLLC: waitedOn.missedLLC}
		c.attributeLoadStall(t, start, &blocked)
	}
	res := m.accessL2Down(c, class, la, start)
	res.times.issue = start

	if res.done < c.lfbMinDone {
		c.lfbMinDone = res.done
	}
	c.lfb = append(c.lfb, lfbEntry{line: la, done: res.done, times: res.times,
		class: class, missedL2: res.missedL2, missedLLC: res.missedLLC})
	done := res.done
	if class == ClassDRd {
		// The LFB residency and the L1-miss-outstanding window coincide
		// for a demand load; one fused event covers both trackers.
		m.eng.obsAt(start, evLFBDemand, c, 0, uint64(done))
		if res.missedL2 {
			enter := res.times.torEnter
			m.eng.obsAt(enter, evBusyPulse, c.missL2Busy, 0, uint64(done))
		}
	} else {
		m.eng.obsAt(start, evOccPulse, c.lfbOcc, 0, uint64(done))
	}
	return res
}

// demandRec returns the current trace record when the request class is the
// sampled demand op itself (DRd/RFO) and the record's memory stages are
// still open — prefetches and writebacks riding on the same coreStep get
// nil, so they never pollute the demand waterfall.
func (m *Machine) demandRec(class ReqClass) *obs.ReqRec {
	r := m.cur
	if r == nil || r.MemSealed() || (class != ClassDRd && class != ClassRFO) {
		return nil
	}
	return r
}

// fillsL1 reports whether a class installs the line into the L1D.
func fillsL1(class ReqClass) bool {
	switch class {
	case ClassDRd, ClassRFO, ClassL1PF, ClassSWPF:
		return true
	}
	return false
}

// accessL2Down resolves a request at the L2 and below, filling caches on
// the way back.  t is the time the request leaves the L1D miss handling.
func (m *Machine) accessL2Down(c *Core, class ReqClass, la uint64, t Cycles) accessResult {
	var res accessResult
	res.times.issue = t
	res.times.l2Start = t + m.cfg.L1TagLat

	ln := c.l2.Lookup(la)
	ownershipMiss := ln != nil && class.IsRFOLike() &&
		(ln.State == Shared || ln.State == Forward)
	if ln != nil && !ownershipMiss {
		m.countL2(c, class, true)
		res.done = res.times.l2Start + m.cfg.L2Lat
		res.loc = SrvL2
		if rec := m.demandRec(class); rec != nil {
			rec.Span(obs.StageL2, res.times.l2Start, res.done)
			rec.SealMem() // trainL2PF below may visit memory devices
		}
		if fillsL1(class) {
			m.fillL1(c, la, ln.State, res.done)
		}
		if class == ClassDRd || class == ClassRFO {
			m.trainL2PF(c, class, la, res.times.l2Start)
		}
		return res
	}
	m.countL2(c, class, false)
	res.missedL2 = true
	tOff := res.times.l2Start + m.cfg.L2TagLat
	if rec := m.demandRec(class); rec != nil {
		rec.Span(obs.StageL2, res.times.l2Start, tOff)
	}

	// Offcore request bookkeeping.
	c.bank.Inc(pmu.OffcoreAllRequests)
	switch class {
	case ClassDRd, ClassSWPF:
		c.bank.Inc(pmu.OffcoreDataRd)
		c.bank.Inc(pmu.OffcoreDemandDataRd)
	case ClassL1PF, ClassL2PFDRd:
		c.bank.Inc(pmu.OffcoreDataRd)
	}

	llc := m.accessLLCDown(c, class, la, tOff, &res.times)
	res.done = llc.done
	res.loc = llc.loc
	res.missedLLC = llc.missedLLC
	res.times = llc.times

	// Offcore-outstanding trackers (chronological via events).
	isRead := class != ClassRFO && class != ClassL2PFRFO
	done := res.done
	if class == ClassDRd {
		// A demand read enters the data-read and demand-data-read
		// windows together; one fused event covers both trackers.
		m.eng.obsAt(tOff, evORODemand, c, 0, uint64(done))
		if res.missedLLC {
			enter := res.times.memEnter
			m.eng.obsAt(enter, evOccPulse, c.oroL3Miss, 0, uint64(done))
		}
	} else if isRead {
		m.eng.obsAt(tOff, evOccPulse, c.oroData, 0, uint64(done))
	}
	if class == ClassRFO {
		m.eng.obsAt(tOff, evBusyPulse, c.rfoBusy, 0, uint64(done))
	}

	// Fill the hierarchy on the way back.
	fillState := Exclusive
	if llc.shared {
		fillState = Shared
	}
	if class.IsRFOLike() {
		fillState = Exclusive
	}
	m.fillL2(c, la, fillState, res.done)
	if fillsL1(class) {
		m.fillL1(c, la, fillState, res.done)
	}
	if class == ClassDRd || class == ClassRFO {
		m.trainL2PF(c, class, la, res.times.l2Start)
	}
	return res
}

// countL2 increments the per-class L2 hit/miss counters of Table 1.
func (m *Machine) countL2(c *Core, class ReqClass, hit bool) {
	b := c.bank
	b.Inc(pmu.L2References)
	switch class {
	case ClassDRd:
		b.Inc(pmu.L2AllDemandRefs)
		b.Inc(pmu.L2AllDemandDataRd)
		if hit {
			b.Inc(pmu.L2DemandDataRdHit)
			b.Inc(pmu.MemLoadL2Hit)
		} else {
			b.Inc(pmu.L2DemandDataRdMiss)
			b.Inc(pmu.L2AllDemandMiss)
			b.Inc(pmu.L2Miss)
			b.Inc(pmu.MemLoadL2Miss)
		}
	case ClassRFO:
		b.Inc(pmu.L2AllDemandRefs)
		b.Inc(pmu.L2AllRFO)
		if hit {
			b.Inc(pmu.L2RFOHit)
		} else {
			b.Inc(pmu.L2RFOMiss)
			b.Inc(pmu.L2AllDemandMiss)
		}
	case ClassSWPF:
		if hit {
			b.Inc(pmu.L2SWPFHit)
		} else {
			b.Inc(pmu.L2SWPFMiss)
			b.Inc(pmu.L2Miss)
		}
	case ClassL1PF:
		if hit {
			b.Inc(pmu.L2HWPFHit)
		} else {
			b.Inc(pmu.L2HWPFMiss)
		}
	}
}

// llcResult is the outcome of the LLC-and-below segment.
type llcResult struct {
	done      Cycles
	loc       ServeLoc
	missedLLC bool
	shared    bool // other cores retain copies
	times     reqTimes
}

// accessLLCDown resolves a request at its home LLC slice and, on a miss,
// at the backing memory device.
func (m *Machine) accessLLCDown(c *Core, class ReqClass, la uint64, t Cycles, rt *reqTimes) llcResult {
	s := m.slices[mem.SliceOf(la, len(m.slices))]
	arrive := t + m.cfg.MeshLat
	rt.torEnter = arrive

	// LLC lookup event counters.
	s.bank.Inc(pmu.LLCLookupAll)
	switch {
	case class.IsRFOLike():
		s.bank.Inc(pmu.LLCLookupRFO)
	case class.IsPrefetch():
		s.bank.Inc(pmu.LLCLookupPrefetch)
	default:
		s.bank.Inc(pmu.LLCLookupDataRead)
	}
	c.bank.Inc(pmu.LongestLatCacheRef)

	if ln := s.llc.Lookup(la); ln != nil {
		loc := SrvLLC
		lat := m.cfg.LLCLat
		if s.cluster != c.cluster {
			lat += m.cfg.SNCExtra
			loc = SrvSNCLLC
		}
		peers := ln.Presence &^ (1 << uint(c.id))
		sharedAfter := false
		if peers != 0 {
			if m.peerHoldsDirty(peers, la) {
				lat += m.cfg.SnoopLat
				if loc == SrvLLC {
					loc = SrvPeerCache
				}
				s.bank.Inc(pmu.SnoopRespHitM)
			} else {
				s.bank.Inc(pmu.SnoopRespHitFwd)
			}
			if s.cluster == c.cluster {
				s.bank.Inc(pmu.SnoopsSentLocal)
			} else {
				s.bank.Inc(pmu.SnoopsSentRemote)
			}
			if class.IsRFOLike() {
				m.invalidatePeers(s, peers, la)
				ln.Presence = 0
			} else {
				// A read snoop downgrades peer ownership: an M copy is
				// absorbed dirty into the LLC, an E copy becomes S —
				// otherwise the old owner could keep writing silently
				// while the requester holds a stale shared copy.
				if m.downgradePeers(peers, la) {
					ln.State = Modified
				}
				sharedAfter = true
			}
		}
		ln.Presence |= 1 << uint(c.id)
		if class.IsRFOLike() {
			ln.State = Modified
		}
		done := arrive + lat
		if rec := m.demandRec(class); rec != nil {
			rec.Span(obs.StageCHA, arrive, done)
			rec.SealMem() // a later victim writeback may visit memory devices
		}
		m.torTransit(s, c, class, loc, arrive, done)
		m.coreServeCounters(c, class, loc, done)
		return llcResult{done: done, loc: loc, shared: sharedAfter, times: *rt}
	}

	// LLC miss: fetch from the backing device.
	c.bank.Inc(pmu.LongestLatCacheMiss)
	if m.accessHook != nil {
		m.accessHook(c.id, la, class.IsRFOLike())
	}
	tag := arrive + m.cfg.LLCTagLat
	rt.memEnter = tag + m.cfg.MeshLat

	var data Cycles
	var loc ServeLoc
	switch m.as.KindOf(la) {
	case mem.LocalDRAM:
		ch := m.imc[mem.ChannelOf(la, len(m.imc))]
		data = ch.read(m.eng, rt.memEnter)
		loc = SrvLocalDRAM
	case mem.RemoteDRAM:
		// Cross the UPI link, queue at the remote socket's IMC, and
		// return over the link.
		upi := m.remoteBus.acquire(rt.memEnter + m.cfg.RemoteDRAMLat)
		if len(m.remoteIMC) > 0 {
			ch := m.remoteIMC[mem.ChannelOf(la, len(m.remoteIMC))]
			data = ch.read(m.eng, upi) + m.cfg.RemoteDRAMLat
		} else {
			data = upi + m.cfg.DRAMLat + m.cfg.RemoteDRAMLat
		}
		loc = SrvRemoteDRAM
	case mem.CXLDRAM:
		dev := m.as.Node(m.as.NodeOf(la)).Device
		data = m.ports[dev].read(m.eng, rt.memEnter, la)
		loc = SrvCXL
	}
	done := data + m.cfg.MeshLat
	if rec := m.demandRec(class); rec != nil {
		rec.Span(obs.StageCHA, arrive, rt.memEnter)
		if loc == SrvLocalDRAM || loc == SrvRemoteDRAM {
			rec.Span(obs.StageIMC, rt.memEnter, data)
		}
		rec.SealMem() // the victim eviction below may visit memory devices
	}

	// Fill the LLC, handling the victim.
	st := Exclusive
	if class.IsRFOLike() {
		st = Modified
	}
	nl := s.llc.Insert(la, st)
	nl.Presence = 1 << uint(c.id)
	if s.llc.HasVictim {
		// A dirty victim must be accepted by the target write queue before
		// the fill can complete: full WPQs / packing buffers backpressure
		// the whole path (the paper's §2.3 "contention is back-propagated
		// along the CXL.mem data path").
		if admit := m.evictLLCVictim(s, s.llc.Victim, done); admit > done {
			done = admit
		}
	}

	m.torTransit(s, c, class, loc, arrive, done)
	m.coreServeCounters(c, class, loc, done)
	return llcResult{done: done, loc: loc, missedLLC: true, times: *rt}
}

// peerHoldsDirty reports whether any core in the presence bitmap holds la
// in Modified state in its private caches.
func (m *Machine) peerHoldsDirty(peers uint64, la uint64) bool {
	for peers != 0 {
		id := trailingZeros(peers)
		peers &^= 1 << uint(id)
		if id >= len(m.cores) {
			continue
		}
		p := m.cores[id]
		if ln := p.l1.Peek(la); ln != nil && ln.State == Modified {
			return true
		}
		if ln := p.l2.Peek(la); ln != nil && ln.State == Modified {
			return true
		}
	}
	return false
}

// downgradePeers demotes peer copies of la to Shared (a read snoop),
// reporting whether any peer held the line Modified (its dirty data now
// lives in the LLC).
func (m *Machine) downgradePeers(peers uint64, la uint64) bool {
	dirty := false
	for peers != 0 {
		id := trailingZeros(peers)
		peers &^= 1 << uint(id)
		if id >= len(m.cores) {
			continue
		}
		p := m.cores[id]
		for _, cache := range []*Cache{p.l1, p.l2} {
			if ln := cache.Peek(la); ln != nil {
				if ln.State == Modified {
					dirty = true
				}
				if ln.State == Modified || ln.State == Exclusive {
					ln.State = Shared
				}
			}
		}
	}
	return dirty
}

// invalidatePeers removes la from the private caches of all cores in the
// bitmap (RFO ownership acquisition).
func (m *Machine) invalidatePeers(s *chaSlice, peers uint64, la uint64) {
	for peers != 0 {
		id := trailingZeros(peers)
		peers &^= 1 << uint(id)
		if id >= len(m.cores) {
			continue
		}
		p := m.cores[id]
		p.l1.Invalidate(la)
		p.l2.Invalidate(la)
	}
}

// evictLLCVictim performs back-invalidation of an inclusive-LLC victim and
// writes dirty data back to memory.  It returns the time the displaced
// write was admitted by the target device queue (t when no writeback was
// needed): a full WPQ or packing buffer backpressures the evicting fill.
func (m *Machine) evictLLCVictim(s *chaSlice, v Line, t Cycles) Cycles {
	dirty := v.State == Modified
	peers := v.Presence
	for peers != 0 {
		id := trailingZeros(peers)
		peers &^= 1 << uint(id)
		if id >= len(m.cores) {
			continue
		}
		p := m.cores[id]
		st1, _ := p.l1.Invalidate(v.Tag)
		st2, _ := p.l2.Invalidate(v.Tag)
		st := st1
		if st2 > st {
			st = st2
		}
		switch st {
		case Modified:
			dirty = true
			s.bank.Inc(pmu.SFEvictionM)
		case Exclusive, Forward:
			s.bank.Inc(pmu.SFEvictionE)
		case Shared:
			s.bank.Inc(pmu.SFEvictionS)
		}
	}
	switch v.State {
	case Modified:
		s.bank.Inc(pmu.LLCVictimsM)
	case Exclusive, Forward:
		s.bank.Inc(pmu.LLCVictimsE)
	case Shared:
		s.bank.Inc(pmu.LLCVictimsS)
	}
	s.bank.Inc(pmu.LLCVictimsTotal)
	if dirty {
		return m.writebackToMemory(s, v.Tag, t, pmu.WBMToI)
	}
	return t
}

// torTransit records a TOR residency for a request: insert counters at
// enter, occupancy over [enter, leave).
func (m *Machine) torTransit(s *chaSlice, c *Core, class ReqClass, loc ServeLoc, enter, leave Cycles) {
	if s.torClassFamily(class) == nil {
		return
	}
	aux := packClassLoc(class, loc)
	m.eng.obsAt(enter, evTORPulse, s, aux, uint64(leave))
}

// coreServeCounters increments the core-PMU offcore-response family and
// the retired-load serve-location events at completion time.
func (m *Machine) coreServeCounters(c *Core, class ReqClass, loc ServeLoc, done Cycles) {
	m.eng.obsAt(done, evServe, c, packClassLoc(class, loc), 0)
}

// serveRetired is the evServe payload: the OCR response-scenario family of
// the class plus, for demand loads, the retired-load serve-location events.
func (c *Core) serveRetired(class ReqClass, loc ServeLoc) {
	// All OCR families (including RFO) use the nine-way response-scenario
	// vector, so the DRd scenario table applies to every class.
	if fam := ocrFamilyOf(class); fam != nil {
		for _, scn := range drdScnTable[loc] {
			c.bank.Inc(fam[scn])
		}
	}
	if class != ClassDRd {
		return
	}
	switch loc {
	case SrvLLC:
		c.bank.Inc(pmu.MemLoadL3Hit)
		c.bank.Inc(pmu.MemLoadL3HitRetired[0]) // xsnp_none
	case SrvPeerCache:
		c.bank.Inc(pmu.MemLoadL3Hit)
		c.bank.Inc(pmu.MemLoadL3HitRetired[3]) // xsnp_fwd
	case SrvSNCLLC:
		c.bank.Inc(pmu.MemLoadL3Hit)
		c.bank.Inc(pmu.MemLoadL3HitRetired[2]) // xsnp_no_fwd
	case SrvRemoteLLC:
		c.bank.Inc(pmu.MemLoadL3Miss)
		c.bank.Inc(pmu.MemLoadL3MissRetired[2]) // remote_fwd
	case SrvLocalDRAM:
		c.bank.Inc(pmu.MemLoadL3Miss)
		c.bank.Inc(pmu.MemLoadL3MissRetired[0])
	case SrvRemoteDRAM:
		c.bank.Inc(pmu.MemLoadL3Miss)
		c.bank.Inc(pmu.MemLoadL3MissRetired[1])
	case SrvCXL:
		// The CXL node appears as remote DRAM to the retired-load
		// facility; the OCR miss_cxl scenario carries the CXL split.
		c.bank.Inc(pmu.MemLoadL3Miss)
		c.bank.Inc(pmu.MemLoadL3MissRetired[1])
	}
}

// fillL1 installs la into the L1D, spilling a dirty victim into the L2.
func (m *Machine) fillL1(c *Core, la uint64, st State, t Cycles) {
	if st == Modified {
		st = Exclusive // the private copy is clean until the core stores
	}
	c.l1.Insert(la, st)
	if c.l1.HasVictim {
		c.bank.Inc(pmu.L1DReplacement)
		if c.l1.Victim.State == Modified {
			m.spillToL2(c, c.l1.Victim.Tag, t)
		}
	}
}

// spillToL2 installs a dirty L1 victim into the L2 as Modified.
func (m *Machine) spillToL2(c *Core, la uint64, t Cycles) {
	c.l2.Insert(la, Modified)
	if c.l2.HasVictim && c.l2.Victim.State == Modified {
		m.l2VictimWriteback(c, c.l2.Victim.Tag, t)
	}
}

// fillL2 installs la into the L2, writing a dirty victim back to the LLC.
func (m *Machine) fillL2(c *Core, la uint64, st State, t Cycles) {
	c.l2.Insert(la, st)
	if c.l2.HasVictim && c.l2.Victim.State == Modified {
		m.l2VictimWriteback(c, c.l2.Victim.Tag, t)
	}
}

// l2VictimWriteback sends a dirty L2 victim to its home LLC slice (the DWr
// path's core->CHA writeback).
func (m *Machine) l2VictimWriteback(c *Core, la uint64, t Cycles) {
	s := m.slices[mem.SliceOf(la, len(m.slices))]
	m.eng.obsAt(t, evWBInsert, s, int32(pmu.WBMToE), 0)
	c.bank.Inc(pmu.OCRModifiedWriteAny)
	// The evicting core may still hold the line in its L1 (the L2 victim
	// was selected independently), so its presence bit must survive —
	// dropping it would let a later reader acquire Exclusive alongside
	// the old owner's Modified copy.
	holds := uint64(0)
	if c.l1.Peek(la) != nil {
		holds = 1 << uint(c.id)
	}
	if ln := s.llc.Peek(la); ln != nil {
		ln.State = Modified
		ln.Presence |= holds
		return
	}
	// Not in the LLC (inclusion drifted): install, possibly evicting.
	nl := s.llc.Insert(la, Modified)
	nl.Presence = holds
	if s.llc.HasVictim {
		m.evictLLCVictim(s, s.llc.Victim, t)
	}
}

// writebackToMemory issues a memory write for a dirty LLC victim — the
// point where the DWr path becomes a CXL.mem store (M2S RwD) for
// CXL-resident lines.  It returns the device-queue admission time, which a
// caller uses as fill backpressure when the write queue is full.
func (m *Machine) writebackToMemory(s *chaSlice, la uint64, t Cycles, transition int) Cycles {
	m.eng.obsAt(t, evWBInsert, s, int32(transition), 0)
	depart := t + m.cfg.MeshLat
	var admit, done Cycles
	switch m.as.KindOf(la) {
	case mem.LocalDRAM:
		ch := m.imc[mem.ChannelOf(la, len(m.imc))]
		admit, done = ch.write(m.eng, depart)
	case mem.RemoteDRAM:
		upi := m.remoteBus.acquire(depart + m.cfg.RemoteDRAMLat)
		if len(m.remoteIMC) > 0 {
			ch := m.remoteIMC[mem.ChannelOf(la, len(m.remoteIMC))]
			admit, done = ch.write(m.eng, upi)
		} else {
			admit, done = upi, upi+m.cfg.DRAMLat
		}
	case mem.CXLDRAM:
		dev := m.as.Node(m.as.NodeOf(la)).Device
		admit, done = m.ports[dev].write(m.eng, depart)
	}
	if transition == pmu.WBMToI {
		m.eng.obsAt(t, evOccPulse, s.wbmtoi, 0, uint64(done))
	}
	return admit
}

// ---------------------------------------------------------------------------
// Stores.
// ---------------------------------------------------------------------------

// store executes a demand store issued at t, returning when the core may
// continue.  The store itself drains from the SB in the background.
func (m *Machine) store(c *Core, addr uint64, t Cycles) Cycles {
	la := mem.LineAddr(addr)
	c.bank.Inc(pmu.MemInstAllStores)

	start := t
	c.pruneSB(t)
	if len(c.sb) >= m.cfg.SBEntries {
		// SB full: wait for the earliest completion.
		w := c.sb[0].done
		for _, e := range c.sb {
			if e.done < w {
				w = e.done
			}
		}
		if w > t {
			if c.demandLoadsOutstanding() {
				c.bank.Add(pmu.ResourceStallsSB, w-t)
			} else {
				c.bank.Add(pmu.ExeBoundOnStores, w-t)
			}
			if rec := m.cur; rec != nil {
				rec.Span(obs.StageSB, t, w)
			}
		}
		start = w
		c.pruneSB(start)
	}

	drainAt := start
	if c.sbNextFree > drainAt {
		drainAt = c.sbNextFree
	}
	drainAt += m.cfg.SBDrainCycles
	c.sbNextFree = drainAt

	done, loc, times := m.drainStore(c, la, drainAt)
	// x86-TSO: stores commit to the cache in program order, so one slow
	// RFO holds every younger store in the buffer behind it.
	if done < c.sbLastDone {
		done = c.sbLastDone
	}
	c.sbLastDone = done
	if done < c.sbMinDone {
		c.sbMinDone = done
	}
	c.sb = append(c.sb, sbEntry{line: la, done: done})
	c.bank.Add(pmu.MemTransStoreSample, uint64(done-t))
	c.bank.Inc(pmu.MemTransStoreCount)
	if rec := m.cur; rec != nil {
		rec.Span(obs.StageReq, t, done)
	}
	if m.fl.Enabled() {
		m.flightDone(c, obs.FlightStore, addr, t, done, loc, &times)
	}
	return start + 1
}

// drainStore commits one store to the L1D at time t, acquiring ownership
// via RFO when the line is not held in M/E state (§2.2 path #2).  It
// returns the commit time, where the ownership was served from, and the
// RFO's stage times (zero for the M/E fast path, which never leaves the
// core).
func (m *Machine) drainStore(c *Core, la uint64, t Cycles) (Cycles, ServeLoc, reqTimes) {
	if ln := c.l1.Lookup(la); ln != nil {
		if ln.State == Modified || ln.State == Exclusive {
			ln.State = Modified
			if rec := m.cur; rec != nil && rec.Loc == "" {
				rec.Loc = SrvL1.String()
				rec.SealMem()
			}
			return t + m.cfg.L1Lat, SrvL1, reqTimes{}
		}
		// Shared/Forward: upgrade via RFO below.
	}
	res := m.missPath(c, ClassRFO, la, t)
	if rec := m.cur; rec != nil && rec.Loc == "" {
		rec.Loc = res.loc.String()
	}
	if ln := c.l1.Peek(la); ln != nil {
		ln.State = Modified
	}
	if res.loc == SrvL2 {
		c.bank.Inc(pmu.MemStoreL2Hit)
	}
	return res.done + m.cfg.L1Lat, res.loc, res.times
}

// ---------------------------------------------------------------------------
// Prefetching.
// ---------------------------------------------------------------------------

// trainL1PF trains the L1 streamer on a demand access and issues the
// resulting prefetches, respecting the in-flight budget and LFB headroom.
func (m *Machine) trainL1PF(c *Core, la uint64, t Cycles) {
	c.pfScratch = c.pfScratch[:0]
	c.pfScratch = c.l1pf.train(la, c.pfScratch)
	for _, cand := range c.pfScratch {
		if c.pfLive(t) >= m.cfg.PFMaxInFlight {
			return
		}
		if len(c.lfb)+2 > m.cfg.LFBEntries {
			return // keep headroom for demand misses
		}
		if c.l1.Peek(cand) != nil || c.findLFB(cand, t) != nil {
			continue
		}
		res := m.missPath(c, ClassL1PF, cand, t)
		if res.done < c.pfMinDone {
			c.pfMinDone = res.done
		}
		c.pfDone = append(c.pfDone, res.done)
	}
}

// trainL2PF trains the L2 stream prefetcher on a demand L2 access and
// issues L2 prefetches (which fill the L2/LLC but not the L1D).
func (m *Machine) trainL2PF(c *Core, trigger ReqClass, la uint64, t Cycles) {
	class := ClassL2PFDRd
	if trigger == ClassRFO {
		class = ClassL2PFRFO
	}
	buf := c.l2pf.train(la, c.pfScratch[:0])
	for _, cand := range buf {
		if c.pfLive(t) >= m.cfg.PFMaxInFlight {
			break
		}
		if c.l2.Peek(cand) != nil {
			c.bank.Inc(pmu.L2HWPFHit)
			continue
		}
		c.bank.Inc(pmu.L2HWPFMiss)
		var rt reqTimes
		rt.issue = t
		rt.l2Start = t
		llc := m.accessLLCDown(c, class, cand, t, &rt)
		st := Exclusive
		if llc.shared {
			st = Shared
		}
		m.fillL2(c, cand, st, llc.done)
		if llc.done < c.pfMinDone {
			c.pfMinDone = llc.done
		}
		c.pfDone = append(c.pfDone, llc.done)
	}
	c.pfScratch = buf[:0]
}

// swPrefetch executes an explicit software prefetch instruction.
func (m *Machine) swPrefetch(c *Core, addr uint64, t Cycles) {
	la := mem.LineAddr(addr)
	c.bank.Inc(pmu.SWPrefetchT0)
	if c.l1.Peek(la) != nil || c.findLFB(la, t) != nil {
		return
	}
	if len(c.lfb) >= m.cfg.LFBEntries || c.pfLive(t) >= m.cfg.PFMaxInFlight {
		return // software prefetches are droppable hints
	}
	res := m.missPath(c, ClassSWPF, la, t)
	c.pfDone = append(c.pfDone, res.done)
}

// trailingZeros returns the index of the lowest set bit.
func trailingZeros(b uint64) int { return bits.TrailingZeros64(b) }

// DevLoad returns the dominant CXL QoS telemetry class of device dev so
// far — the CXL 3.x DevLoad indication derived from its queue pressure.
func (m *Machine) DevLoad(dev int) cxl.DevLoad {
	m.eng.drainObs(m.eng.Now())
	return m.ports[dev].devLoad()
}

// SetFaultPlan installs (or clears, with nil) the link-fault schedule of
// CXL device dev.  The plan applies to traffic issued after the call;
// in-flight requests already priced keep their timing.  RAS escalation
// state (poison count, viral containment, removal discovery) restarts with
// the new plan.
func (m *Machine) SetFaultPlan(dev int, plan *cxl.FaultPlan) {
	if err := plan.Validate(); err != nil {
		panic("sim: " + err.Error())
	}
	p := m.ports[dev]
	p.plan = plan
	p.poisonSeen, p.viral, p.viralUntil, p.removalSeen = 0, false, 0, false
}

// DeviceViral reports whether CXL device dev is currently in viral
// containment (every read completes flagged poisoned).
func (m *Machine) DeviceViral(dev int) bool {
	p := m.ports[dev]
	return p.viralAt(m.eng.Now())
}

// DeviceIsolated reports whether the host has isolated CXL device dev
// after a surprise removal; isolated devices fast-fail all accesses.
func (m *Machine) DeviceIsolated(dev int) bool {
	return m.ports[dev].plan.IsolatedBy(uint64(m.eng.Now()))
}

// Idle reports whether the machine has no scheduled work left: every
// attached workload has run dry and all in-flight events drained.  The
// profiler watchdog uses it to distinguish a finished workload from a
// stalled epoch.
func (m *Machine) Idle() bool {
	return m.eng.Pending() == 0 && m.pendingSteps() == 0
}

// PendingEvents reports the current scheduled-work depth (engine wheel +
// heap, plus mirrored core steps in windowed mode) — the
// pf_engine_events_pending gauge.
func (m *Machine) PendingEvents() int { return m.eng.Pending() + m.pendingSteps() }

// pendingSteps counts core steps armed in the windowed scheduler's mirror.
func (m *Machine) pendingSteps() int {
	n := 0
	for _, c := range m.cores {
		if c.stepPending {
			n++
		}
	}
	return n
}

// SetRunAhead enables or disables the core-stepping run-ahead fast path
// (on by default).  Forcing it off makes every op round-trip through the
// event engine; the golden digest suite runs both ways to prove the PMU
// output is byte-identical.  Disabling run-ahead also forces the windowed
// scheduler off (every op dispatches as an engine event).
func (m *Machine) SetRunAhead(on bool) {
	m.eng.runAhead = on
	if !on && m.lanes >= 0 {
		m.SetLanes(-1)
	}
}

// SetLanes selects the core-step scheduling mode.  n < 0 forces every core
// step through the event engine (the PR-6 behavior and the golden-test
// baseline).  n == 0, the default, is auto: the windowed scheduler runs
// core steps off a per-core mirror, using parallel worker lanes when
// GOMAXPROCS > 1 and the sequential per-core sweep otherwise.  n == 1 pins
// the windowed sequential sweep; n > 1 caps the parallel lane count at n
// (and at the core count).  Call between Run slices; switching mid-run is
// supported but re-sequences pending steps against already-scheduled
// events.
func (m *Machine) SetLanes(n int) {
	if n == m.lanes {
		return
	}
	was, is := m.lanes >= 0, n >= 0
	m.lanes = n
	if was == is {
		return
	}
	if is {
		m.absorbCoreEvents()
	} else {
		m.flushStepMirror()
	}
}

// Lanes returns the configured lane mode (see SetLanes).
func (m *Machine) Lanes() int { return m.lanes }

// windowed reports whether core steps run off the mirror (windowed modes)
// rather than as engine events.
func (m *Machine) windowed() bool { return m.lanes >= 0 }

// InlineSteps reports how many workload ops the run-ahead fast path has
// executed inline, without an event-engine round-trip — the
// pf_engine_inline_steps counter.
func (m *Machine) InlineSteps() uint64 { return m.eng.inlineSteps }

// DispatchedEvents reports how many events the engine has dispatched —
// the pf_engine_dispatched_events counter.  The ratio of InlineSteps to
// ops stepped is the fast-path hit rate.
func (m *Machine) DispatchedEvents() uint64 { return m.eng.dispatched }

// SetTracer attaches a request-path tracer (nil detaches).  With no tracer
// — or a disabled one — the per-op cost is a nil check plus one atomic
// load; sampled demand loads and stores record a span waterfall.
func (m *Machine) SetTracer(tr *obs.Tracer) { m.tr = tr }

// Tracer returns the attached tracer, or nil.
func (m *Machine) Tracer() *obs.Tracer { return m.tr }

// SetFlight attaches a flight recorder (nil detaches).  The recorder must
// be sized for at least this machine's core count.  Attached but disabled
// it costs one inlined atomic check per demand op; enabled it files a
// packed record per completion without touching engine or PMU state, so
// simulated timing is unchanged either way.  The machine also installs the
// engine-depth probe promotions stamp into their context.
func (m *Machine) SetFlight(f *obs.Flight) {
	if f != nil && f.Cores() < len(m.cores) {
		panic(fmt.Sprintf("sim: SetFlight: recorder sized for %d cores, machine has %d",
			f.Cores(), len(m.cores)))
	}
	m.fl = f
	if f != nil {
		f.SetPendingProbe(m.PendingEvents)
	}
}

// Flight returns the attached flight recorder, or nil.
func (m *Machine) Flight() *obs.Flight { return m.fl }

// flightDone files one completed demand request with the attached flight
// recorder.  Callers have already checked m.fl.Enabled().  rt carries the
// stage times for requests that left the core (nil for cache-served
// completions).  Inside a parallel window the record is deferred to the
// core's pending buffer — shared promotion state is only touched at the
// barrier — so lanes never contend and the schedule stays deterministic.
func (m *Machine) flightDone(c *Core, class uint8, addr uint64, issue, done Cycles, loc ServeLoc, rt *reqTimes) {
	r := obs.FlightRec{
		Addr:  addr,
		Issue: uint64(issue),
		Done:  uint64(done),
		Core:  uint16(c.id),
		Class: class,
		Loc:   uint8(loc),
		LFB:   uint8(len(c.lfb)),
		SB:    uint8(len(c.sb)),
	}
	if rt != nil {
		r.L2Start = flightDelta(issue, rt.l2Start)
		r.TOREnter = flightDelta(issue, rt.torEnter)
		r.MemEnter = flightDelta(issue, rt.memEnter)
	}
	if m.eng.laneGuard {
		m.fl.Defer(c.id, r)
	} else {
		m.fl.Record(c.id, r)
	}
}

// flightDelta packs a stage timestamp as a cycle delta from issue; 0 means
// the stage was never reached (or predates the issue, as in an LFB merge).
func flightDelta(issue, at Cycles) uint32 {
	if at <= issue {
		return 0
	}
	d := at - issue
	if d > 1<<32-1 {
		d = 1<<32 - 1
	}
	return uint32(d)
}

// SetAccessHook installs fn as the memory-access observer: it fires for
// every request served by a memory device (post-LLC), with the line
// address and write intent.  Tiering policies use it the way TPP uses
// NUMA hint faults.  Pass nil to disable.
func (m *Machine) SetAccessHook(fn func(core int, lineAddr uint64, write bool)) {
	m.accessHook = fn
}

// MigratePage moves the page containing addr to node dst and charges the
// transfer to the participating devices: one line-granular read stream on
// the source and write stream on the destination, visible in their PMU
// counters exactly like TPP's kernel migration traffic.
func (m *Machine) MigratePage(addr uint64, dst mem.NodeID) error {
	src := m.as.NodeOf(addr)
	if src == dst {
		return nil
	}
	base := m.as.PageBase(addr)
	if err := m.as.MovePage(addr, dst); err != nil {
		return err
	}
	lines := m.as.PageSize() / mem.LineSize
	now := m.eng.Now()
	for i := uint64(0); i < lines; i++ {
		la := base + i*mem.LineSize
		// Source read.
		switch m.as.Node(src).Kind {
		case mem.LocalDRAM:
			m.imc[mem.ChannelOf(la, len(m.imc))].read(m.eng, now)
		case mem.CXLDRAM:
			m.ports[m.as.Node(src).Device].read(m.eng, now, la)
		case mem.RemoteDRAM:
			m.remoteBus.acquire(now)
		}
		// Destination write.
		switch m.as.Node(dst).Kind {
		case mem.LocalDRAM:
			m.imc[mem.ChannelOf(la, len(m.imc))].write(m.eng, now)
		case mem.CXLDRAM:
			m.ports[m.as.Node(dst).Device].write(m.eng, now)
		case mem.RemoteDRAM:
			m.remoteBus.acquire(now)
		}
		// Migrated lines are stale in the caches under their old node
		// mapping only for placement purposes; coherence state is
		// unaffected (the physical content moves with the page).
	}
	return nil
}

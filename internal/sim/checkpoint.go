package sim

import (
	"fmt"
	"math/bits"
	"unsafe"

	"pathfinder/internal/mem"
	"pathfinder/internal/workload"
)

// Checkpoint is a frozen image of a machine's mutable run state: per-core
// core/cache/LFB/SB state, the engine heap + timing wheel + sequence
// counters, the observer lane, PMU banks, device queues, LRSM/RAS state,
// and the workload generators' RNG streams.  The image is held in the same
// flat arrays a live machine uses (a shadow machine that never runs), so a
// fork is a set of memcpys into a freshly-built or reused machine — never a
// re-simulation of the prefix that produced the state.
//
// Immutable structures are shared copy-on-write by reference across every
// machine forked from the image: the Config value (including the FaultPlan
// pointer, immutable after parse), the address-space node table, and the
// workload substrate (CSR graphs, hash tables, decoded traces).
//
// Observability attachments sit outside the checkpoint boundary: the
// tracer, flight recorder, and access hook describe an observer of one
// particular run, not machine state, so Restore returns a machine with all
// three detached.  Attach them after restore; the restore-then-attach
// golden suite proves the sequence behaves identically to the same attach
// sequence on a fresh machine.
type Checkpoint struct {
	cfg    Config
	space  *mem.AddressSpace // frozen placement state at the barrier
	shadow *Machine          // frozen deep copy; never runs
	srcIdx map[any]int32     // shadow component -> table index, for event remap
	bytes  int               // approximate hot-state size of the image
}

// Checkpoint captures the machine's complete mutable state at the current
// cycle.  The machine must be quiescent — between Run slices, with no
// pending closure events (Schedule/After callbacks cannot be serialized;
// run past them first).  The machine itself is left untouched and can keep
// running; the checkpoint is an independent frozen copy.
//
// Every attached workload generator must implement workload.Forkable so its
// position (RNG streams, cursors, pending ops) can continue independently
// on each forked machine.
func (m *Machine) Checkpoint() (*Checkpoint, error) {
	if m.eng.laneGuard {
		return nil, fmt.Errorf("sim: Checkpoint inside an open parallel window")
	}
	if err := m.checkpointable(); err != nil {
		return nil, err
	}
	shadow := New(m.cfg, m.as.Clone())
	srcIdx := indexComponents(m)
	copyMachineState(shadow, m, srcIdx)
	for i, c := range m.cores {
		g, err := workload.Fork(c.gen)
		if err != nil {
			return nil, fmt.Errorf("sim: Checkpoint core %d: %w", i, err)
		}
		shadow.cores[i].gen = g
	}
	cp := &Checkpoint{
		cfg:    m.cfg,
		space:  shadow.as,
		shadow: shadow,
		srcIdx: indexComponents(shadow),
	}
	cp.bytes = cp.imageBytes()
	return cp, nil
}

// Cycle returns the simulated cycle the checkpoint was taken at.
func (cp *Checkpoint) Cycle() Cycles { return cp.shadow.eng.now }

// Bytes returns the approximate size of the image's hot state — the bytes
// a fork actually copies (cache arrays, queue rings, event wheels, PMU
// counters, page table).  Shared immutable structures are not counted.
func (cp *Checkpoint) Bytes() int { return cp.bytes }

// Restore builds a new machine positioned exactly at the checkpoint:
// running it produces byte-identical PMU counters, digests, and analyzer
// output to the machine the checkpoint was taken from (proven by the golden
// restore-equivalence suite).  The tracer, flight recorder, and access hook
// are detached; attach them after restore if the forked run needs them.
func (cp *Checkpoint) Restore() *Machine {
	m := New(cp.cfg, cp.space.Clone())
	if err := cp.restoreInto(m); err != nil {
		// New just built m from cp.cfg, so every compatibility and
		// forkability precondition holds by construction.
		panic("sim: " + err.Error())
	}
	return m
}

// RestoreInto re-positions an existing machine at the checkpoint, reusing
// its buffers — in steady state (a machine previously restored from the
// same spec) the fork allocates nothing.  The machine must have been built
// from the same Config (same component counts and timing parameters);
// typically it is a previous Restore() of this or an equivalently-specced
// checkpoint.  Attachments (tracer, flight recorder, access hook) are
// detached, exactly as Restore leaves them.
func (cp *Checkpoint) RestoreInto(m *Machine) error {
	if m.eng.laneGuard {
		return fmt.Errorf("sim: RestoreInto inside an open parallel window")
	}
	if m.cfg != cp.cfg {
		return fmt.Errorf("sim: RestoreInto machine built from a different Config (%q vs %q)",
			m.cfg.Name, cp.cfg.Name)
	}
	return cp.restoreInto(m)
}

func (cp *Checkpoint) restoreInto(m *Machine) error {
	m.as.CopyStateFrom(cp.space)
	copyMachineState(m, cp.shadow, cp.srcIdx)
	for i, sc := range cp.shadow.cores {
		dc := m.cores[i]
		if workload.CopyState(sc.gen, dc.gen) {
			continue
		}
		g, err := workload.Fork(sc.gen)
		if err != nil {
			return fmt.Errorf("sim: restore core %d: %w", i, err)
		}
		dc.gen = g
	}
	return nil
}

// checkpointable verifies no pending event carries a closure: evFunc events
// bind arbitrary Go state the checkpoint cannot carry into another machine.
func (m *Machine) checkpointable() error {
	for _, ev := range m.eng.heap {
		if ev.kind == evFunc {
			return fmt.Errorf("sim: Checkpoint with a pending Schedule/After closure at cycle %d; run past it first", ev.when)
		}
	}
	for w := 0; w < wheelWords; w++ {
		occ := m.eng.occupied[w]
		for occ != 0 {
			slot := w<<6 + bits.TrailingZeros64(occ)
			occ &= occ - 1
			for _, ev := range m.eng.wheel[slot] {
				if ev.kind == evFunc {
					return fmt.Errorf("sim: Checkpoint with a pending Schedule/After closure at cycle %d; run past it first", ev.when)
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Component identity: pending events hold pointers to the components they
// act on, so copying an event between machines means translating its target
// to the destination's corresponding component.  componentTable enumerates
// every possible event target in New()'s construction order — identical
// Configs therefore produce positionally-identical tables, and (source
// index -> destination table) is the whole translation.
// ---------------------------------------------------------------------------

func (m *Machine) componentTable() []any {
	t := m.compTable[:0]
	for _, c := range m.cores {
		t = append(t, c, c.lfbOcc, c.oroData, c.oroDemand, c.oroL3Miss,
			c.rfoBusy, c.missL1Busy, c.missL2Busy)
	}
	for _, s := range m.slices {
		t = append(t, s, s.wbmtoi)
		fams := [5]*torFamily{s.ia, s.drd, s.drdPref, s.rfo, s.rfoPref}
		for _, f := range fams {
			for _, tr := range f.occ {
				t = append(t, tr)
			}
		}
	}
	for _, ch := range m.imc {
		t = append(t, ch, ch.rpqOcc, ch.wpqOcc)
	}
	for _, ch := range m.remoteIMC {
		t = append(t, ch, ch.rpqOcc, ch.wpqOcc)
	}
	for _, p := range m.ports {
		t = append(t, p, p.ingress, p.retryOcc, p.packReqOcc, p.packDataOcc,
			p.devRPQOcc, p.devWPQOcc)
	}
	for _, b := range m.banks {
		t = append(t, b)
	}
	m.compTable = t
	return t
}

func indexComponents(m *Machine) map[any]int32 {
	t := m.componentTable()
	idx := make(map[any]int32, len(t))
	for i, c := range t {
		idx[c] = int32(i)
	}
	return idx
}

// remapper translates event targets from the source machine's components to
// the destination's.
type remapper struct {
	srcIdx map[any]int32
	dst    []any
}

func (r *remapper) target(t any) any {
	if t == nil {
		return nil
	}
	i, ok := r.srcIdx[t]
	if !ok {
		// Every schedulable target is enumerated by componentTable; a miss
		// means an event site and the table drifted apart — a checkpoint
		// bug, not a user error.
		panic(fmt.Sprintf("sim: checkpoint: event target %T not in component table", t))
	}
	return r.dst[i]
}

// ---------------------------------------------------------------------------
// State copy.  One shared routine serves Checkpoint (live -> shadow),
// Restore (shadow -> fresh machine), and RestoreInto (shadow -> reused
// machine): dst and src must be structurally identical (same Config), and
// every copy reuses dst's buffers where capacity allows.
// ---------------------------------------------------------------------------

func copyMachineState(dst, src *Machine, srcIdx map[any]int32) {
	rm := remapper{srcIdx: srcIdx, dst: dst.componentTable()}
	copyEngineState(dst.eng, src.eng, &rm)

	for i, c := range src.cores {
		copyCoreState(dst.cores[i], c)
	}
	for i, s := range src.slices {
		copyCHAState(dst.slices[i], s)
	}
	for i, ch := range src.imc {
		copyIMCState(dst.imc[i], ch)
	}
	for i, ch := range src.remoteIMC {
		copyIMCState(dst.remoteIMC[i], ch)
	}
	for i, p := range src.ports {
		copyPortState(dst.ports[i], p)
	}
	dst.remoteBus = src.remoteBus
	for i, b := range src.banks {
		dst.banks[i].CopyCountersFrom(b)
	}
	dst.lastSync = src.lastSync
	dst.lanes = src.lanes
	dst.wstat = src.wstat
	dst.wstat.LaneBusyNs = nil

	// Attachments are observers of one particular run, not machine state.
	dst.tr = nil
	dst.cur = nil
	dst.fl = nil
	dst.accessHook = nil
}

func copyEngineState(dst, src *Engine, rm *remapper) {
	dst.now = src.now
	dst.seq = src.seq
	dst.horizon = src.horizon
	dst.runAhead = src.runAhead
	dst.laneGuard = false
	dst.drainSlot, dst.drainConsumed = -1, 0
	dst.inlineSteps = src.inlineSteps
	dst.dispatched = src.dispatched

	// Far heap: a verbatim copy is a valid heap (same ordering invariant).
	dst.heap = dst.heap[:0]
	for _, ev := range src.heap {
		ev.target = rm.target(ev.target)
		dst.heap = append(dst.heap, ev)
	}

	// Timing wheel: visit the union of occupied slots — src's to copy, dst's
	// to clear stale residue — so the cost scales with live entries, not
	// wheel size.  Non-empty buckets always carry their occupancy bit (runAt
	// drops a bucket's bit with its last entry), so the union covers every
	// slot that needs touching.
	for w := 0; w < wheelWords; w++ {
		union := src.occupied[w] | dst.occupied[w]
		for union != 0 {
			slot := w<<6 + bits.TrailingZeros64(union)
			union &= union - 1
			b := dst.wheel[slot]
			clear(b) // release stale target/fn references
			b = b[:0]
			for _, ev := range src.wheel[slot] {
				ev.target = rm.target(ev.target)
				b = append(b, ev)
			}
			dst.wheel[slot] = b
		}
	}
	dst.occupied = src.occupied
	dst.wheelLen = src.wheelLen

	// Observer lane: same union walk over the (much wider) observer wheel.
	for w := 0; w < obsWheelWords; w++ {
		union := src.obsOcc[w] | dst.obsOcc[w]
		for union != 0 {
			slot := w<<6 + bits.TrailingZeros64(union)
			union &= union - 1
			b := dst.obsWheel[slot]
			clear(b)
			b = b[:0]
			for _, ev := range src.obsWheel[slot] {
				ev.target = rm.target(ev.target)
				b = append(b, ev)
			}
			dst.obsWheel[slot] = b
		}
	}
	dst.obsOcc = src.obsOcc
	dst.obsLen = src.obsLen
	dst.obsFar = dst.obsFar[:0]
	for _, fe := range src.obsFar {
		fe.ev.target = rm.target(fe.ev.target)
		dst.obsFar = append(dst.obsFar, fe)
	}
	dst.obsSeq = src.obsSeq
	dst.obsLast = src.obsLast
}

func copyCoreState(dst, src *Core) {
	copyCacheState(dst.l1, src.l1)
	copyCacheState(dst.l2, src.l2)
	dst.lfb = append(dst.lfb[:0], src.lfb...)
	dst.sb = append(dst.sb[:0], src.sb...)
	dst.sbNextFree = src.sbNextFree
	dst.sbLastDone = src.sbLastDone
	dst.lfbMinDone = src.lfbMinDone
	dst.sbMinDone = src.sbMinDone
	dst.pfMinDone = src.pfMinDone
	dst.fbFullUntil = src.fbFullUntil
	*dst.l1pf = *src.l1pf
	*dst.l2pf = *src.l2pf
	dst.pfDone = append(dst.pfDone[:0], src.pfDone...)
	dst.pfScratch = dst.pfScratch[:0] // scratch; always reset before use

	dst.lfbOcc.CopyStateFrom(src.lfbOcc)
	dst.oroData.CopyStateFrom(src.oroData)
	dst.oroDemand.CopyStateFrom(src.oroDemand)
	dst.oroL3Miss.CopyStateFrom(src.oroL3Miss)
	dst.rfoBusy.CopyStateFrom(src.rfoBusy)
	dst.missL1Busy.CopyStateFrom(src.missL1Busy)
	dst.missL2Busy.CopyStateFrom(src.missL2Busy)

	dst.running = src.running
	dst.op = src.op
	dst.opPending = src.opPending
	dst.stepPending = src.stepPending
	dst.stepAt = src.stepAt
	dst.stepSeq = src.stepSeq

	// Lane state is only valid inside an open window; at quiescence it is
	// scratch and starts clean on the restored machine.
	dst.lanePos.Store(0)
	dst.laneDone.Store(false)
	dst.laneKey = 0
	dst.laneOps = 0
	dst.laneObs = dst.laneObs[:0]
}

func copyCacheState(dst, src *Cache) {
	if len(dst.lines) != len(src.lines) || dst.ways != src.ways {
		panic(fmt.Sprintf("sim: checkpoint cache geometry mismatch (%d/%d lines, %d/%d ways)",
			len(dst.lines), len(src.lines), dst.ways, src.ways))
	}
	copy(dst.lines, src.lines)
	copy(dst.mru, src.mru)
	dst.stamp = src.stamp
	dst.Victim = src.Victim
	dst.HasVictim = src.HasVictim
}

func copyCHAState(dst, src *chaSlice) {
	copyCacheState(dst.llc, src.llc)
	df := [5]*torFamily{dst.ia, dst.drd, dst.drdPref, dst.rfo, dst.rfoPref}
	sf := [5]*torFamily{src.ia, src.drd, src.drdPref, src.rfo, src.rfoPref}
	for i := range df {
		for j := range df[i].occ {
			df[i].occ[j].CopyStateFrom(sf[i].occ[j])
		}
	}
	dst.wbmtoi.CopyStateFrom(src.wbmtoi)
}

func copyQueueState(dst, src *boundedQueue) {
	if len(dst.dep) != len(src.dep) {
		panic(fmt.Sprintf("sim: checkpoint queue capacity mismatch (%d vs %d)",
			len(dst.dep), len(src.dep)))
	}
	copy(dst.dep, src.dep)
	dst.idx = src.idx
}

func copyIMCState(dst, src *imcChannel) {
	dst.bus = src.bus
	copyQueueState(dst.rpq, src.rpq)
	copyQueueState(dst.wpq, src.wpq)
	dst.rpqOcc.CopyStateFrom(src.rpqOcc)
	dst.wpqOcc.CopyStateFrom(src.wpqOcc)
}

func copyPortState(dst, src *cxlPort) {
	dst.linkTx = src.linkTx
	dst.linkRx = src.linkRx
	// The fault plan is immutable after parse — shared copy-on-write, so a
	// SetFaultPlan on the source after the checkpoint does not leak into
	// forks (the pointer was captured here).
	dst.plan = src.plan
	dst.txIdx = src.txIdx
	dst.ingress.CopyStateFrom(src.ingress)
	dst.retryOcc.CopyStateFrom(src.retryOcc)
	dst.qos.CopyStateFrom(src.qos)
	dst.qosBase = src.qosBase
	copyQueueState(dst.packReq, src.packReq)
	copyQueueState(dst.packData, src.packData)
	dst.packReqOcc.CopyStateFrom(src.packReqOcc)
	dst.packDataOcc.CopyStateFrom(src.packDataOcc)
	copyQueueState(dst.devRPQ, src.devRPQ)
	copyQueueState(dst.devWPQ, src.devWPQ)
	dst.devRPQOcc.CopyStateFrom(src.devRPQOcc)
	dst.devWPQOcc.CopyStateFrom(src.devWPQOcc)
	dst.media = src.media
	dst.poisonSeen = src.poisonSeen
	dst.viral = src.viral
	dst.viralUntil = src.viralUntil
	dst.removalSeen = src.removalSeen
}

// imageBytes estimates the hot-state size of the frozen image: what a fork
// copies, excluding shared immutable structures.
func (cp *Checkpoint) imageBytes() int {
	m := cp.shadow
	n := 0
	cacheBytes := func(c *Cache) int {
		return len(c.lines)*int(unsafe.Sizeof(Line{})) + len(c.mru)
	}
	for _, c := range m.cores {
		n += cacheBytes(c.l1) + cacheBytes(c.l2)
		n += len(c.lfb) * int(unsafe.Sizeof(lfbEntry{}))
		n += len(c.sb) * int(unsafe.Sizeof(sbEntry{}))
		n += len(c.pfDone) * 8
	}
	for _, s := range m.slices {
		n += cacheBytes(s.llc)
	}
	for _, ch := range m.imc {
		n += (len(ch.rpq.dep) + len(ch.wpq.dep)) * 8
	}
	for _, ch := range m.remoteIMC {
		n += (len(ch.rpq.dep) + len(ch.wpq.dep)) * 8
	}
	for _, p := range m.ports {
		n += (len(p.packReq.dep) + len(p.packData.dep) + len(p.devRPQ.dep) + len(p.devWPQ.dep)) * 8
	}
	for _, b := range m.banks {
		n += len(b.Values()) * 8 // counter words
	}
	e := m.eng
	n += (len(e.heap) + e.wheelLen) * int(unsafe.Sizeof(event{}))
	n += (e.obsLen + len(e.obsFar)) * int(unsafe.Sizeof(obsEvent{}))
	n += m.as.PageCount()
	return n
}

package sim

import (
	"testing"

	"pathfinder/internal/mem"
)

// BenchmarkCacheLookupHit measures the predicted-way hit: repeated lookups
// of a resident line must cost one tag compare, not a scan of the set.
func BenchmarkCacheLookupHit(b *testing.B) {
	c := NewCache(48<<10, 12)
	la := uint64(4 * mem.LineSize)
	c.Insert(la, Exclusive)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(la) == nil {
			b.Fatal("miss on resident line")
		}
	}
}

// BenchmarkCacheLookupConflict measures the mispredicted path: alternating
// lookups of two lines in the same set defeat the MRU predictor every
// time, falling back to the way scan.
func BenchmarkCacheLookupConflict(b *testing.B) {
	c := NewCache(48<<10, 12)
	sets := uint64(c.Sets())
	a := uint64(0)
	d := sets * mem.LineSize // same set, different tag
	c.Insert(a, Exclusive)
	c.Insert(d, Exclusive)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la := a
		if i&1 == 1 {
			la = d
		}
		if c.Lookup(la) == nil {
			b.Fatal("miss on resident line")
		}
	}
}

// TestCacheWayPredictorStaysCoherent drives the predictor through hits,
// conflicting inserts, and invalidations: a stale prediction must never
// produce a wrong lookup result.
func TestCacheWayPredictorStaysCoherent(t *testing.T) {
	c := NewCache(2*12*mem.LineSize, 12) // 2 sets, 12 ways
	sets := uint64(c.Sets())
	line := func(i uint64) uint64 { return i * sets * mem.LineSize } // all in set 0
	// Fill the set and hit each line, moving the prediction around.
	for i := uint64(0); i < 12; i++ {
		c.Insert(line(i), Exclusive)
	}
	for i := uint64(0); i < 12; i++ {
		if c.Lookup(line(i)) == nil {
			t.Fatalf("line %d missing after fill", i)
		}
	}
	// Invalidate the last-hit line: the stale prediction points at an
	// invalid way and must fall through to a (failed) scan.
	c.Invalidate(line(11))
	if c.Lookup(line(11)) != nil {
		t.Fatal("invalidated line still found")
	}
	if c.Lookup(line(3)) == nil {
		t.Fatal("resident line lost after invalidate")
	}
	// Evicting insert: the predictor must track the replacement.
	c.Insert(line(100), Modified)
	if got := c.Lookup(line(100)); got == nil || got.State != Modified {
		t.Fatal("inserted line not found via predictor")
	}
	// Peek must not disturb the predictor (recency untouched either).
	if c.Peek(line(3)) == nil {
		t.Fatal("peek missed resident line")
	}
	if got := c.Lookup(line(100)); got == nil {
		t.Fatal("line lost after peek")
	}
}

package sim

import "fmt"

// ReqClass classifies a memory request by its architectural origin — the
// four CXL.mem data paths of the paper's §2.2, split by prefetch engine the
// way the PMU counters split them (Table 5).
type ReqClass uint8

// Request classes.
const (
	ClassDRd     ReqClass = iota // demand data read
	ClassRFO                     // demand read-for-ownership (store side)
	ClassL1PF                    // L1D hardware prefetch (-> DRd)
	ClassL2PFDRd                 // L2 hardware prefetch data read
	ClassL2PFRFO                 // L2 hardware prefetch RFO
	ClassSWPF                    // software prefetch (merges into DRd after L1D)
	ClassWB                      // writeback (DWr path below the SB)
	classCount
)

// String returns the paper's name for the class.
func (c ReqClass) String() string {
	switch c {
	case ClassDRd:
		return "DRd"
	case ClassRFO:
		return "RFO"
	case ClassL1PF:
		return "L1PF"
	case ClassL2PFDRd:
		return "L2PF.DRd"
	case ClassL2PFRFO:
		return "L2PF.RFO"
	case ClassSWPF:
		return "SWPF"
	case ClassWB:
		return "WB"
	}
	return fmt.Sprintf("ReqClass(%d)", uint8(c))
}

// IsPrefetch reports whether the class is a hardware or software prefetch.
func (c ReqClass) IsPrefetch() bool {
	return c == ClassL1PF || c == ClassL2PFDRd || c == ClassL2PFRFO || c == ClassSWPF
}

// IsRFOLike reports whether the request seeks ownership (write intent).
func (c ReqClass) IsRFOLike() bool { return c == ClassRFO || c == ClassL2PFRFO }

// ServeLoc is where a request's data was ultimately served from.
type ServeLoc uint8

// Serve locations, mirroring the paper's six LLC-miss destinations plus the
// on-core levels (Figure 3-c, Table 7).
const (
	SrvL1 ServeLoc = iota
	SrvLFB
	SrvL2
	SrvLLC       // home LLC slice in the requester's SNC cluster
	SrvPeerCache // another core's private cache, same cluster (snoop forward)
	SrvSNCLLC    // LLC slice / peer cache in the distant SNC cluster
	SrvRemoteLLC // other socket's LLC (cross-socket snoop)
	SrvLocalDRAM
	SrvRemoteDRAM
	SrvCXL
	srvCount
)

// String returns a short location name matching Table 7's rows.
func (s ServeLoc) String() string {
	switch s {
	case SrvL1:
		return "L1D"
	case SrvLFB:
		return "LFB"
	case SrvL2:
		return "L2"
	case SrvLLC:
		return "local LLC"
	case SrvPeerCache:
		return "peer cache"
	case SrvSNCLLC:
		return "snc LLC"
	case SrvRemoteLLC:
		return "remote LLC"
	case SrvLocalDRAM:
		return "local DRAM"
	case SrvRemoteDRAM:
		return "remote DRAM"
	case SrvCXL:
		return "CXL memory"
	}
	return fmt.Sprintf("ServeLoc(%d)", uint8(s))
}

// BeyondLLC reports whether the location is past the requester's local LLC
// lookup (an LLC miss in the paper's accounting).
func (s ServeLoc) BeyondLLC() bool { return s >= SrvSNCLLC }

// reqTimes records when a request crossed each hierarchy boundary; the
// core's stall attribution and the occupancy trackers are driven off these.
type reqTimes struct {
	issue    Cycles // core issued the access
	l2Start  Cycles // discovered the L1D miss, L2 lookup begins
	torEnter Cycles // arrived at the CHA / TOR inserted
	memEnter Cycles // entered the memory device path (IMC or M2PCIe)
	done     Cycles // data returned / request completed
}

package sim

import (
	"testing"

	"pathfinder/internal/cxl"
	"pathfinder/internal/mem"
	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

func TestQoSTelemetryClasses(t *testing.T) {
	as := testSpace(t)
	r, _ := as.Alloc(32<<20, mem.Fixed(2))
	cfg := smallConfig()
	cfg.LFBEntries = 64
	cfg.PFMaxInFlight = 64
	m := New(cfg, as)

	// Idle device: light load.
	m.Run(10_000)
	m.Sync()
	if got := m.DevLoad(0); got != cxl.LightLoad {
		t.Fatalf("idle DevLoad = %v", got)
	}
	if m.Bank("cxl0").Read(pmu.CXLQoS[0]) == 0 {
		t.Fatal("no light-load residency recorded")
	}

	// Saturate: all cores stream from CXL with wide MLP.
	for c := 0; c < cfg.Cores; c++ {
		g := workload.NewStream(workload.Region{Base: r.Base + uint64(c)*(4<<20), Size: 4 << 20}, 0, 0, uint64(c+1))
		m.Attach(c, g)
	}
	m.Run(4_000_000)
	m.Sync()
	b := m.Bank("cxl0")
	heavy := b.Read(pmu.CXLQoS[2]) + b.Read(pmu.CXLQoS[3]) // moderate + severe
	if heavy == 0 {
		t.Fatal("saturated device never left light/optimal load")
	}
	// Residency totals account for all synced time.
	var total uint64
	for _, ev := range pmu.CXLQoS {
		total += b.Read(ev)
	}
	if total != uint64(m.Now()) {
		t.Fatalf("QoS residency %d != elapsed %d", total, m.Now())
	}
}

func TestFlitBandwidthAsymmetry(t *testing.T) {
	// Reads move ~17B up + ~85B down; writes move ~85B up + ~17B down.
	// With a link much slower than the media, a read-only stream is bound
	// by the response direction and a write-only stream by the request
	// direction — throughput should be roughly symmetric, and far below
	// what a header-only accounting would allow.
	run := func(storeFrac float64) uint64 {
		as := testSpace(t)
		r, _ := as.Alloc(32<<20, mem.Fixed(2))
		cfg := smallConfig()
		cfg.FlexBusGBs = 4 // make the link the bottleneck
		m := New(cfg, as)
		g := workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 0, storeFrac, 3)
		c := workload.NewCounting(g)
		m.Attach(0, c)
		m.Run(3_000_000)
		return c.Total()
	}
	reads := run(0)
	writes := run(1)
	ratio := float64(reads) / float64(writes)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("read/write throughput asymmetry too large under link bound: %d vs %d", reads, writes)
	}
}

package sim

import (
	"sync/atomic"

	"pathfinder/internal/pmu"
	"pathfinder/internal/workload"
)

// lfbEntry is one line-fill-buffer slot: an in-flight demand miss,
// prefetch, or RFO, held from allocation until its data returns.
type lfbEntry struct {
	line      uint64
	done      Cycles
	times     reqTimes
	class     ReqClass
	missedL2  bool
	missedLLC bool
}

// sbEntry is one store-buffer slot, held until the store commits to L1D.
type sbEntry struct {
	line uint64
	done Cycles
}

// Core models one CPU core: its private L1D and L2, line fill buffer,
// store buffer, hardware prefetchers, and the per-core PMU bank.
type Core struct {
	id      int
	cluster int
	bank    *pmu.Bank

	l1, l2 *Cache

	lfb    []lfbEntry
	lfbOcc *pmu.OccTracker

	sb         []sbEntry
	sbNextFree Cycles
	sbLastDone Cycles // commit time of the previous store (TSO in-order drain)

	// Earliest completion time in each pending list (max when empty).
	// Pruning is skipped entirely while now is below the watermark, so
	// hit-dominated runs stop rescanning unchanged lists every op.
	lfbMinDone Cycles
	sbMinDone  Cycles
	pfMinDone  Cycles

	fbFullUntil Cycles // end of the last counted LFB-full wait interval

	l1pf, l2pf *prefetcher
	// pfDone holds the completion cycles of in-flight hardware/software
	// prefetches.  The in-flight count is derived by pruning completed
	// entries at read time, which replaces a per-prefetch retirement
	// event through the engine.
	pfDone    []Cycles
	pfScratch []uint64

	// Offcore-outstanding trackers (the core PMU's latency events).
	oroData   *pmu.OccTracker
	oroDemand *pmu.OccTracker
	oroL3Miss *pmu.OccTracker
	rfoBusy   *pmu.BusyTracker

	// Outstanding-demand-miss cycle trackers.
	missL1Busy *pmu.BusyTracker
	missL2Busy *pmu.BusyTracker

	gen     workload.Generator
	running bool

	// op is the scratch operation filled by gen.Next.  It lives on the
	// core, not the coreStep stack: a stack-local would escape through the
	// Generator interface call and cost one heap object per simulated op.
	op workload.Op

	// opPending marks that op holds a fetched-but-unexecuted operation: the
	// window classifier pulls the next op from the generator to inspect it,
	// and on a bail-out the op must not be re-fetched (the generator has
	// already advanced) — the deferred sequential step consumes the stash.
	opPending bool

	// The windowed scheduler's core-step mirror (see window.go): instead of
	// round-tripping an evCoreStep through the engine, each core's next
	// step is held here as (cycle, engine-seq), directly comparable against
	// engine events for exact dispatch ordering.
	stepPending bool
	stepAt      Cycles
	stepSeq     uint64

	// Parallel-lane state, valid only inside an open window.  lanePos packs
	// (stepAt-windowStart)<<32 | commitKey and is the frontier other lanes
	// compare against; laneDone marks the lane finished for this window
	// (bailed, past the horizon, or blocked by an earlier frozen frontier).
	// laneKey mirrors the packed key for the barrier's re-sequencing sort;
	// laneOps counts ops committed this window; laneObs buffers deferred
	// observer entries for the barrier merge.
	lanePos  atomic.Uint64
	laneDone atomic.Bool
	laneKey  uint64
	laneOps  uint64
	laneObs  []obsEvent
}

func newCore(id, cluster int, cfg *Config, bank *pmu.Bank) *Core {
	c := &Core{
		id:      id,
		cluster: cluster,
		bank:    bank,
		l1:      NewCache(cfg.L1DSize, cfg.L1DWays),
		l2:      NewCache(cfg.L2Size, cfg.L2Ways),
		l1pf:    newPrefetcher(cfg.L1PFDegree, cfg.L1PFDistance, cfg.PFTrainHits),
		l2pf:    newPrefetcher(cfg.L2PFDegree, cfg.L2PFDistance, cfg.PFTrainHits),

		lfbOcc: pmu.NewOccTracker(bank, pmu.L1DPendMissPending,
			pmu.L1DPendMissCycles, -1, cfg.LFBEntries),
		oroData: pmu.NewOccTracker(bank, pmu.ORODataRd,
			pmu.OROCyclesDataRd, -1, 0),
		oroDemand: pmu.NewOccTracker(bank, pmu.ORODemandDataRd,
			pmu.OROCyclesDemandDataRd, -1, 0),
		oroL3Miss: pmu.NewOccTracker(bank, pmu.OROL3MissDemandDataRd, -1, -1, 0),
	}
	c.rfoBusy = pmu.NewBusyTracker(bank, pmu.OROCyclesDemandRFO)
	c.missL1Busy = pmu.NewBusyTracker(bank, pmu.CyclesL1DMiss)
	c.missL2Busy = pmu.NewBusyTracker(bank, pmu.CyclesL2Miss)
	return c
}

// ID returns the core number.
func (c *Core) ID() int { return c.id }

// Bank returns the core's PMU bank.
func (c *Core) Bank() *pmu.Bank { return c.bank }

// Running reports whether a workload is attached and not yet exhausted.
func (c *Core) Running() bool { return c.running }

// pfLive returns the number of prefetches still in flight at cycle now,
// pruning completed entries.  A prefetch whose data returned exactly at
// now is no longer in flight — matching the retirement event the engine
// used to dispatch ahead of any same-cycle core step.
func (c *Core) pfLive(now Cycles) int {
	if now < c.pfMinDone {
		return len(c.pfDone)
	}
	out := c.pfDone[:0]
	min := ^Cycles(0)
	for _, d := range c.pfDone {
		if d > now {
			if d < min {
				min = d
			}
			out = append(out, d)
		}
	}
	c.pfDone = out
	c.pfMinDone = min
	return len(out)
}

// findLFB returns the pending LFB entry covering line la, pruning entries
// completed by cycle now.
func (c *Core) findLFB(la uint64, now Cycles) *lfbEntry {
	c.pruneLFB(now)
	for i := range c.lfb {
		if c.lfb[i].line == la {
			return &c.lfb[i]
		}
	}
	return nil
}

// pruneLFB drops entries whose data has returned by now.
func (c *Core) pruneLFB(now Cycles) {
	if now < c.lfbMinDone {
		return
	}
	out := c.lfb[:0]
	min := ^Cycles(0)
	for _, e := range c.lfb {
		if e.done > now {
			if e.done < min {
				min = e.done
			}
			out = append(out, e)
		}
	}
	c.lfb = out
	c.lfbMinDone = min
}

// allocLFB finds a free LFB slot at or after t, returning the time the
// slot becomes available and, when a wait occurred, a copy of the entry
// waited on (for stall attribution; by value — a returned pointer into
// c.lfb would force a heap copy per full-buffer wait, the only simulator
// hot-path allocation).  FB-full wait cycles are counted here.
func (c *Core) allocLFB(t Cycles, cap int) (Cycles, lfbEntry, bool) {
	c.pruneLFB(t)
	if len(c.lfb) < cap {
		return t, lfbEntry{}, false
	}
	// Wait for the earliest completion.
	ei := 0
	for i := range c.lfb {
		if c.lfb[i].done < c.lfb[ei].done {
			ei = i
		}
	}
	waited := c.lfb[ei]
	w := waited.done
	// Count full-wait cycles without double-counting overlapping waiters:
	// the counter is "cycles a demand request waited", a per-cycle core
	// condition.
	from := t
	if c.fbFullUntil > from {
		from = c.fbFullUntil
	}
	if w > from {
		c.bank.Add(pmu.L1DPendMissFBFull, w-from)
		c.fbFullUntil = w
	}
	c.pruneLFB(w)
	return w, waited, true
}

// demandLoadsOutstanding reports whether any LFB entry is a demand load —
// the condition separating resource_stalls.sb from
// exe_activity.bound_on_stores.
func (c *Core) demandLoadsOutstanding() bool {
	for i := range c.lfb {
		if c.lfb[i].class == ClassDRd {
			return true
		}
	}
	return false
}

// pruneSB drops completed store-buffer entries.
func (c *Core) pruneSB(now Cycles) {
	if now < c.sbMinDone {
		return
	}
	out := c.sb[:0]
	min := ^Cycles(0)
	for _, e := range c.sb {
		if e.done > now {
			if e.done < min {
				min = e.done
			}
			out = append(out, e)
		}
	}
	c.sb = out
	c.sbMinDone = min
}

// sync flushes the core's trackers so a snapshot observes integrals up to
// now.
func (c *Core) sync(now Cycles) {
	c.lfbOcc.Advance(now)
	c.oroData.Advance(now)
	c.oroDemand.Advance(now)
	c.oroL3Miss.Advance(now)
	c.rfoBusy.Flush(now)
	c.missL1Busy.Flush(now)
	c.missL2Busy.Flush(now)
}

// accessResult carries the outcome of a memory access below the L1D.
type accessResult struct {
	done      Cycles
	loc       ServeLoc
	times     reqTimes
	missedL2  bool
	missedLLC bool
}

// attributeLoadStall charges a blocked interval [b0, b1) of the core to the
// hierarchical stall counters, based on how deep the blocking request went:
// the whole interval stalls on the L1D miss; the part after the request
// passed L2 (or the LLC) also stalls on the L2 (L3) miss, yielding the
// memory_activity/cycle_activity semantics of Table 1.
func (c *Core) attributeLoadStall(b0, b1 Cycles, res *accessResult) {
	if b1 <= b0 {
		return
	}
	c.bank.Add(pmu.StallsL1DMiss, b1-b0)
	if res.missedL2 {
		off := res.times.torEnter
		if off < b0 {
			off = b0
		}
		if b1 > off {
			c.bank.Add(pmu.StallsL2Miss, b1-off)
		}
	}
	if res.missedLLC {
		off := res.times.memEnter
		if off < b0 {
			off = b0
		}
		if b1 > off {
			c.bank.Add(pmu.StallsL3Miss, b1-off)
		}
	}
}

// Tiering: the paper's Case 7 as an API walkthrough.  A GUPS workload with
// a hot set split across local and CXL memory runs twice — without and with
// TPP page placement — and PathFinder shows the traffic shifting to the
// local tier and the culprit queue draining.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/mem/tier"
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

func run(tpp bool) (ops float64, cxlLoads, localLoads float64, promoted int) {
	cfg := sim.SPR()
	cfg.LLCSize /= 4
	cfg.LLCSlices /= 4
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 16 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 16 << 30},
	})
	machine := sim.New(cfg, as)

	// A 72 MiB working set placed 4:1 local:CXL with a 24 MiB hot set —
	// the shape of the paper's GUPS configuration.
	reg, err := as.Alloc(72<<20, mem.Interleave{A: 0, B: 1, RatioA: 4, RatioB: 1})
	if err != nil {
		log.Fatal(err)
	}
	gups := workload.NewGUPS(workload.Region{Base: reg.Base, Size: reg.Size}, 2, 1.0/3.0, 0.9, 7)
	gups.Batch = 8
	counting := workload.NewCounting(gups)
	machine.Attach(0, counting)

	var mgr *tier.Manager
	if tpp {
		cfgT := tier.DefaultConfig()
		cfgT.MaxMigrationsPerTick = 256
		mgr, err = tier.NewManager(as, machine, 0, 1, cfgT)
		if err != nil {
			log.Fatal(err)
		}
		machine.SetAccessHook(func(_ int, la uint64, _ bool) { mgr.ObserveAccess(la) })
	}

	cap := core.NewCapturer(machine)
	var snap *core.Snapshot
	for e := 0; e < 16; e++ {
		machine.Run(2_000_000)
		snap = cap.Capture()
		if mgr != nil {
			mgr.Tick()
		}
	}
	cxlLoads = snap.CoreFamilySum([]int{0}, pmu.OCRDemandDataRd, pmu.ScnMissCXL)
	localLoads = snap.CoreFamilySum([]int{0}, pmu.OCRDemandDataRd, pmu.ScnMissLocalDDR)
	if mgr != nil {
		promoted = mgr.Stats().Promoted
	}
	return float64(counting.Total()), cxlLoads, localLoads, promoted
}

func main() {
	opsOff, cxlOff, localOff, _ := run(false)
	opsOn, cxlOn, localOn, promoted := run(true)

	fmt.Printf("TPP off: %10.0f ops | DRd serves: local %6.0f, CXL %6.0f (last epoch)\n",
		opsOff, localOff, cxlOff)
	fmt.Printf("TPP on : %10.0f ops | DRd serves: local %6.0f, CXL %6.0f | %d pages promoted\n",
		opsOn, localOn, cxlOn, promoted)
	fmt.Printf("speedup: %.2fx; CXL demand-load traffic change: %+.0f%%\n",
		opsOn/opsOff, (cxlOn/max(cxlOff, 1)-1)*100)
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Quickstart: assemble a CXL-equipped machine, run one application with
// its working set on the CXL node, and profile it with PathFinder —
// path map, stall breakdown, and the bottleneck culprit in ~60 lines.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

func main() {
	// 1. A Sapphire-Rapids-like machine with local DDR and a CXL Type-3
	//    device, both exposed as NUMA nodes (the LLC is shrunk 4x so a
	//    small working set behaves like a big one).
	cfg := sim.SPR()
	cfg.LLCSize /= 4
	cfg.LLCSlices /= 4
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 16 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 16 << 30},
	})
	machine := sim.New(cfg, as)

	// 2. Place a 64 MiB working set on the CXL node and pick a workload
	//    from the Table 6 catalog.
	reg, err := as.Alloc(64<<20, mem.Fixed(1))
	if err != nil {
		log.Fatal(err)
	}
	app, _ := workload.Lookup("LBM") // 519.lbm_r: a streaming stencil
	gen := app.Generator(workload.Region{Base: reg.Base, Size: reg.Size}, 1)

	// 3. Profile: snapshot every 2M cycles for 6 epochs.
	prof, err := core.NewProfiler(core.Spec{
		Machine:     machine,
		Apps:        []core.AppRun{{Label: "lbm", Core: 0, Gen: gen}},
		EpochCycles: 2_000_000,
		Epochs:      6,
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := prof.Run()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the last epoch.
	last := results[len(results)-1]
	pm := last.PathMaps["lbm"]
	fmt.Println("PFBuilder path map (request hits per level):")
	for _, l := range core.Levels() {
		if total := pm.LevelTotal(l); total > 0 {
			fmt.Printf("  %-12s %10.0f\n", l, total)
		}
	}
	hot, share := pm.HotPathUncore()
	fmt.Printf("hot uncore path: %v (%.0f%% of uncore traffic)\n", hot, share*100)

	bd := last.Stalls["lbm"]
	fmt.Println("\nPFEstimator CXL-induced DRd stall shares:")
	for _, c := range core.Components() {
		if s := bd.Share(core.PathDRd, c); s > 0 {
			fmt.Printf("  %-12s %5.1f%%\n", c, s*100)
		}
	}

	qr := last.Queues["lbm"]
	fmt.Printf("\nPFAnalyzer culprit: %v on %v (queue length %.1f)\n",
		qr.CulpritPath, qr.CulpritComp, qr.Q[qr.CulpritPath][qr.CulpritComp])
}

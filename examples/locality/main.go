// Locality: the paper's Case 6 as an API walkthrough of PFMaterializer's
// cross-snapshot analyses.  A phased workload alternates between a
// cache-friendly phase and a CXL-heavy phase; the materializer's
// time-series clustering finds the stable windows, Holt-Winters forecasts
// the next epochs of the periodic pattern, and residual analysis flags an
// injected disturbance.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

func main() {
	cfg := sim.SPR()
	cfg.LLCSize /= 4
	cfg.LLCSlices /= 4
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 16 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 16 << 30},
	})
	machine := sim.New(cfg, as)

	localReg, err := as.Alloc(2<<20, mem.Fixed(0)) // cache-resident phase
	if err != nil {
		log.Fatal(err)
	}
	cxlReg, err := as.Alloc(64<<20, mem.Fixed(1)) // CXL-heavy phase
	if err != nil {
		log.Fatal(err)
	}
	toR := func(r mem.Region) workload.Region { return workload.Region{Base: r.Base, Size: r.Size} }

	// A periodic two-phase workload whose phases span multiple epochs:
	// quiet cache-resident streaming, then CXL-hungry chasing.
	phased := workload.NewPhased(
		workload.Phase{Gen: workload.NewStream(toR(localReg), 4, 0.1, 1), Ops: 500_000},
		workload.Phase{Gen: workload.NewPointerChase(toR(cxlReg), 1, 2), Ops: 2_500},
	)
	// A steady CXL flow for the anomaly analysis.
	steadyReg, err := as.Alloc(32<<20, mem.Fixed(1))
	if err != nil {
		log.Fatal(err)
	}
	steady := workload.NewGUPS(toR(steadyReg), 2, 0, 0, 5)
	steady.Batch = 8

	const epochs = 28
	prof, err := core.NewProfiler(core.Spec{
		Machine: machine,
		Apps: []core.AppRun{
			{Label: "phased", Core: 0, Gen: phased},
			{Label: "steady", Core: 2, Gen: steady},
		},
		EpochCycles: 1_500_000,
		Epochs:      epochs,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Inject a one-epoch disturbance: a streaming antagonist on the same
	// CXL device around epoch 20.
	antagonist, err := as.Alloc(32<<20, mem.Fixed(1))
	if err != nil {
		log.Fatal(err)
	}
	for e := 0; e < epochs; e++ {
		if e == 20 {
			for i, c := range []int{1, 3, 4} {
				machine.Attach(c, workload.NewStream(toR(antagonist), 0, 0, uint64(7+i)))
			}
		}
		if e == 21 {
			for _, c := range []int{1, 3, 4} {
				machine.Detach(c)
			}
		}
		if _, err := prof.Step(); err != nil {
			log.Fatal(err)
		}
	}

	mt := prof.Materializer()

	fmt.Println("== Locality windows (time-series clustering over CXL hits) ==")
	for i, w := range mt.LocalityWindows("phased", core.LvlCXL, 0.6) {
		fmt.Printf("  window %d: epochs [%2d,%2d)  mean CXL hits %8.0f\n",
			i, w.Segment.Start, w.Segment.End, w.MeanHits)
	}

	fmt.Println("\n== Holt-Winters forecast of the periodic CXL load ==")
	if fc, err := mt.Forecast("phased", core.LvlCXL, 4, 4); err == nil {
		for h, v := range fc {
			fmt.Printf("  epoch +%d: predicted CXL hits %.0f\n", h+1, v)
		}
	} else {
		fmt.Println("  (not enough periodic history:", err, ")")
	}

	fmt.Println("\n== Residual anomalies in the steady flow (epoch-20 antagonist) ==")
	for _, a := range mt.Anomalies("steady", core.LvlCXL, 6, 2.0) {
		fmt.Printf("  epoch %2d: observed %8.0f vs expected %8.0f (z = %+.1f)\n",
			a.Index, a.Value, a.Expected, a.Score)
	}
}

// Bandwidth: the paper's Case 5 as an API walkthrough.  Four streaming
// instances with different intensities contend for one CXL device;
// PathFinder infers each one's bandwidth share from PFBuilder's CXL
// request frequencies — the Pearson correlation against the real
// application-level bandwidth is ~1 under FlexBus saturation.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/sim"
	"pathfinder/internal/tsdb"
	"pathfinder/internal/workload"
)

func main() {
	cfg := sim.SPR()
	cfg.LLCSize /= 4
	cfg.LLCSlices /= 4
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 16 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 16 << 30},
	})
	machine := sim.New(cfg, as)
	k := core.ConstsFor(cfg)

	const epoch = 6_000_000
	thinks := []uint16{24, 16, 8, 0}
	gens := make([]*workload.Counting, 4)
	for i := range gens {
		reg, err := as.Alloc(16<<20, mem.Fixed(1))
		if err != nil {
			log.Fatal(err)
		}
		st := workload.NewStream(workload.Region{Base: reg.Base, Size: reg.Size},
			thinks[i], 0.25, uint64(i+1))
		st.Reuse = 2
		gens[i] = workload.NewCounting(st)
		machine.Attach(i, gens[i])
	}

	cap := core.NewCapturer(machine)
	machine.Run(epoch)
	snap := cap.Capture()

	seconds := float64(epoch) / (cfg.GHz * 1e9)
	var bw, freq []float64
	fmt.Println("instance | app bandwidth (MB/s) | PFBuilder CXL req/s")
	for i, g := range gens {
		mbps := float64(g.Loads+g.Stores) * 64 / seconds / 1e6
		pm := core.BuildPathMap(snap, []int{i})
		f := pm.CXLTraffic() / seconds
		bw = append(bw, mbps)
		freq = append(freq, f)
		fmt.Printf("  MBW-%d  | %16.0f     | %14.2e\n", i+1, mbps, f)
	}

	r, err := tsdb.Pearson(freq, bw)
	if err != nil {
		log.Fatal(err)
	}
	qr := core.AnalyzeQueues(snap, nil, 0, k)
	fmt.Printf("\nPearson(request frequency, bandwidth) = %.3f\n", r)
	fmt.Printf("PFAnalyzer culprit: %v on %v\n", qr.CulpritPath, qr.CulpritComp)
	fmt.Println("=> when the culprit sits at FlexBus+MC, request frequency predicts bandwidth share")
}

// Interference: the paper's Case 3 as an API walkthrough.  One core runs a
// local mFlow and a CXL mFlow mixed at increasing CXL shares; PathFinder's
// estimator and analyzer show the in-core stall growing even though the
// FlexBus stays uncongested — the back-propagated interference signature.
package main

import (
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

func buildMachine() (*sim.Machine, *mem.AddressSpace) {
	cfg := sim.SPR()
	cfg.LLCSize /= 4
	cfg.LLCSlices /= 4
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 16 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 16 << 30},
	})
	return sim.New(cfg, as), as
}

func main() {
	fmt.Println("CXL share | in-core CXL stall | LFB queue | FlexBus queue | culprit")
	for _, share := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		machine, as := buildMachine()
		k := core.ConstsFor(machine.Config())

		localReg, err := as.Alloc(32<<20, mem.Fixed(0))
		if err != nil {
			log.Fatal(err)
		}
		cxlReg, err := as.Alloc(32<<20, mem.Fixed(1))
		if err != nil {
			log.Fatal(err)
		}
		mkStream := func(r mem.Region, seed uint64) workload.Generator {
			g := workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 2, 0.1, seed)
			g.Reuse = 4
			return g
		}
		// Two mFlows on one core: Mix interleaves them deterministically.
		gen := workload.NewMix(mkStream(localReg, 3), mkStream(cxlReg, 5), share)

		cap := core.NewCapturer(machine)
		machine.Attach(0, gen)
		machine.Run(6_000_000)
		snap := cap.Capture()

		bd := core.EstimateStalls(snap, []int{0}, 0, k)
		inCore := 0.0
		for _, c := range []core.Component{core.CompSB, core.CompL1D,
			core.CompLFB, core.CompL2, core.CompLLC} {
			for _, p := range core.Paths() {
				inCore += bd.Stall[p][c]
			}
		}
		meas := core.MeasuredQueues(snap, []int{0}, 0)
		qr := core.AnalyzeQueues(snap, []int{0}, 0, k)

		fmt.Printf("   %3.0f%%   | %14.0f    | %7.2f   | %9.2f     | %v on %v\n",
			share*100, inCore, meas[core.CompLFB], meas[core.CompFlexBusMC],
			qr.CulpritPath, qr.CulpritComp)
	}
}

GO ?= go

.PHONY: build test race vet fuzz-short bench-json bench-regress bench-sweep obs-smoke soak soak-smoke all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package exceeds go test's default 10m budget under the
# race detector, so give the suite a wider timeout.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

# Benchmark numbers are lane-config experiments: GOMAXPROCS decides how
# many worker lanes the window scheduler gets under the auto policy, so
# both bench targets pin it to one explicit, overridable value
# (`make BENCH_GOMAXPROCS=8 bench-json`).  benchjson parses the run's
# GOMAXPROCS from the benchmark-name suffixes and records it plus the
# declared lane policy in the snapshot; benchregress refuses to gate a
# run against a baseline with a different recorded config.
BENCH_GOMAXPROCS ?= $(shell nproc)
BENCH_LANES ?= auto

# Snapshot the simulator/profiler micro-benchmarks (ns/op, allocs/op,
# derived sim-ops/sec) into BENCH_<date>.json so the perf trajectory is
# tracked across PRs.
bench-json:
	GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test -run '^$$' -bench 'SimLocalStream|SimCXLStream|SimMultiCoreStream|SimThinkHeavyStream|CaptureSnapshot|PFBuilder|PFEstimator|PFAnalyzer|AnalyzeQueues|EpochLoop' \
		-benchmem -benchtime 200000x . | $(GO) run ./cmd/benchjson -lanes $(BENCH_LANES) -o BENCH_$$(date +%Y%m%d).json
	@echo wrote BENCH_$$(date +%Y%m%d).json

# Gate the profiler hot paths against the committed baseline: fail when
# SimCXLStream, CaptureSnapshot, or EpochLoop ns/op regresses more than 20%
# versus the latest BENCH_*.json.  The iteration count must match
# bench-json's, or the differently-amortized warmup skews the comparison;
# the gate takes the fastest of three repetitions to filter scheduler noise.
# The TracerOff pairs additionally bound the cost of an attached-but-
# disabled request tracer — compared within the same run, where a tight
# tolerance is meaningful.  The bound is 8%: the run-ahead fast path cut
# per-op cost ~1.5x, so the tracer's fixed per-op check (one predicted
# branch + an inlined atomic load) is now a larger fraction of a smaller
# number (~4-5% on the CXL stream), and the multi-core pair adds scheduler
# noise on top.  An accidentally-enabled tracer costs ~10x, far outside
# the bound either way.
# The LanesOff pair additionally bounds the windowed scheduler against the
# dispatch-only engine in the same run: the window-parallel default may not
# run more than 8% slower than forcing every core step through the event
# engine, on any GOMAXPROCS (at 1 the windowed path degenerates to the
# run-ahead sweep, which already beats dispatch).
# The Flight pairs ride the same bench run (benchregress accepts a file, so
# the output is captured once and gated at three tolerances): the disabled
# flight recorder is meant to ride along in production, so its off-cost is
# bounded at 2% — one nil check plus an inlined atomic load per completion.
# The enabled recorder (FlightOn vs FlightOff, same run) files a packed
# record through the per-core ring, quantile sketch, and histogram on every
# completion (~18% on the pure CXL stream, the worst case: every op
# completes); 25% bounds it without gating on noise.
# The -max ceilings pin the simulator hot loops at 0 allocs/op and bound
# their residual B/op.  The residual bytes at 0 allocs/op are amortized
# one-time buffer growth (observer wheel buckets, pending-list slices)
# divided by b.N — they shrink as -benchtime grows (34 -> 13 B/op from
# 200k to 1M iterations on the CXL stream) and are NOT a steady-state
# leak; the ceilings (~2x measured at 200k) catch a real per-op
# allocation sneaking in, which would add >=16 B/op at these counts.
bench-regress:
	@tmp=$$(mktemp); trap 'rm -f '"$$tmp" EXIT; \
	GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test -run '^$$' -bench 'SimLocalStream|SimCXLStream|SimMultiCoreStream|CaptureSnapshot|EpochLoop' -benchmem -benchtime 200000x -count 3 . \
		| tee "$$tmp" && \
	$(GO) run ./cmd/benchregress \
		-lanes $(BENCH_LANES) \
		-watch 'BenchmarkSimCXLStream,BenchmarkSimMultiCoreStream,BenchmarkCaptureSnapshot,BenchmarkEpochLoop' \
		-pair-tolerance 0.08 \
		-pairs 'BenchmarkSimCXLStreamTracerOff=BenchmarkSimCXLStream,BenchmarkSimMultiCoreStreamTracerOff=BenchmarkSimMultiCoreStream,BenchmarkEpochLoopTracerOff=BenchmarkEpochLoop,BenchmarkSimMultiCoreStream=BenchmarkSimMultiCoreStreamLanesOff' \
		-max 'BenchmarkSimLocalStream:allocs/op:0,BenchmarkSimCXLStream:allocs/op:0,BenchmarkSimMultiCoreStream:allocs/op:0,BenchmarkSimLocalStream:B/op:64,BenchmarkSimCXLStream:B/op:64,BenchmarkSimMultiCoreStream:B/op:256' \
		"$$tmp" && \
	$(GO) run ./cmd/benchregress \
		-lanes $(BENCH_LANES) \
		-watch 'BenchmarkSimCXLStream' \
		-pair-tolerance 0.02 \
		-pairs 'BenchmarkSimCXLStreamFlightOff=BenchmarkSimCXLStream,BenchmarkSimMultiCoreStreamFlightOff=BenchmarkSimMultiCoreStream' \
		"$$tmp" && \
	$(GO) run ./cmd/benchregress \
		-lanes $(BENCH_LANES) \
		-watch 'BenchmarkSimCXLStream' \
		-pair-tolerance 0.25 \
		-pairs 'BenchmarkSimCXLStreamFlightOn=BenchmarkSimCXLStreamFlightOff' \
		"$$tmp"

# Forked-vs-scratch sweep gate: restoring a warmed checkpoint per config
# point must cost at most half of re-warming from scratch (measured ~27x
# faster; the gate demands >=2x so it never trips on noise).  The
# negative pair tolerance inverts the usual bound into a required
# speedup: Forked ns/op may not exceed 0.5x Scratch ns/op.  -watch '' —
# the sweep benchmarks are deliberately absent from the committed
# baseline (each iteration runs a full 16-point sweep, far too slow for
# bench-json's fixed iteration counts).  5 iterations amortize the
# handful of one-time allocations (pool internals, timer) that would
# otherwise round the forked loop's allocs/op up from zero.
bench-sweep:
	@tmp=$$(mktemp); trap 'rm -f '"$$tmp" EXIT; \
	GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test -run '^$$' -bench 'BenchmarkSweep' -benchmem -benchtime 5x . \
		| tee "$$tmp" && \
	$(GO) run ./cmd/benchregress \
		-lanes $(BENCH_LANES) \
		-watch '' \
		-pair-tolerance -0.5 \
		-pairs 'BenchmarkSweepForked=BenchmarkSweepScratch' \
		-max 'BenchmarkSweepForked:allocs/op:0' \
		"$$tmp"

# End-to-end check of `pathfinder -serve`: boots the introspection server
# on a random port and requires live /metrics and /status content.
obs-smoke:
	sh scripts/obs_smoke.sh

# Chaos soak: seeded random fault plans (CRC noise, bursts, timeouts,
# throttles, poison, viral containment, surprise removal) against the
# workload matrix under invariant monitors.  Any violation is shrunk to a
# minimal plan and printed with its seed — replay it verbatim with
# `go run ./cmd/pfbench -replay 'seed,plan'`.  Exit is nonzero on findings.
soak:
	$(GO) run ./cmd/pfbench -soak 256 -soak-seed 1

# The CI-sized soak: fewer, shorter cases under the race detector, sized
# to finish well inside a minute.
soak-smoke:
	$(GO) run -race ./cmd/pfbench -soak 12 -soak-cycles 250000 -soak-seed 1

# Short fuzzing pass over the flit decoders and the fault-plan parser:
# each target runs for 10 seconds and must only ever return structured
# errors, never panic.
fuzz-short:
	$(GO) test ./internal/cxl/ -run '^$$' -fuzz FuzzFlitDecode -fuzztime 10s
	$(GO) test ./internal/cxl/ -run '^$$' -fuzz FuzzFlit256Feed -fuzztime 10s
	$(GO) test ./internal/cxl/ -run '^$$' -fuzz FuzzParseFaultPlan -fuzztime 10s
	$(GO) test ./internal/sim/ -run '^$$' -fuzz FuzzCheckpointRoundTrip -fuzztime 10s

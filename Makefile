GO ?= go

.PHONY: build test race vet fuzz-short all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package exceeds go test's default 10m budget under the
# race detector, so give the suite a wider timeout.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

# Short fuzzing pass over the flit decoders and the fault-plan parser:
# each target runs for 10 seconds and must only ever return structured
# errors, never panic.
fuzz-short:
	$(GO) test ./internal/cxl/ -run '^$$' -fuzz FuzzFlitDecode -fuzztime 10s
	$(GO) test ./internal/cxl/ -run '^$$' -fuzz FuzzFlit256Feed -fuzztime 10s
	$(GO) test ./internal/cxl/ -run '^$$' -fuzz FuzzParseFaultPlan -fuzztime 10s

// Command pfbench regenerates the paper's tables and figures against the
// simulated machines: one experiment per artifact, selected with -exp.
// DESIGN.md's per-experiment index maps each name to its paper artifact;
// EXPERIMENTS.md records paper-vs-measured values from full runs.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"sync"

	"pathfinder/internal/chaos"
	"pathfinder/internal/experiments"
	"pathfinder/internal/sim"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: mlc, fig2, fig3, fig4, emr, table7, fig6, fig78, fig910, fig11, fig12, fig13, overhead, faults, sweep, or all")
	machine := flag.String("machine", "spr", "machine model: spr or emr")
	quick := flag.Bool("quick", false, "shorter runs (coarser numbers)")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker goroutines for independent machine runs (1 = serial)")
	lanes := flag.Int("lanes", 0,
		"window lanes per machine: 0 auto-budget (GOMAXPROCS/-parallel), 1 sequential sweep, n>1 capped parallel lanes, -1 engine dispatch only; results are lane-invariant")
	warmCache := flag.Bool("warm-cache", false,
		"fork warm-shared experiment matrices from cached warmed checkpoints instead of re-warming every point (identical results, much faster warm-heavy sweeps)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file")
	traceFile := flag.String("trace", "", "write runtime execution trace to file")
	soak := flag.Int("soak", 0, "chaos-soak: run N seeded random fault cases under invariant monitors")
	soakSeed := flag.Uint64("soak-seed", 1, "base seed for -soak (case i uses seed+i)")
	soakCycles := flag.Uint64("soak-cycles", 0, "simulated cycles per soak case (0 = default)")
	soakBudget := flag.Uint64("soak-budget", 0, "per-case supervision budget in simulated cycles (0 = unlimited)")
	replay := flag.String("replay", "", "replay a chaos finding from its printed 'seed,plan' pair")
	flightDump := flag.String("flight-dump", "pfbench-flight-bundle.json",
		"where -replay writes the violation's flight-recorder postmortem bundle ('' = skip)")
	flag.Parse()

	if *replay != "" {
		seed, planStr, err := chaos.ParseReplaySpec(*replay)
		if err != nil {
			fatalf("pfbench: %v", err)
		}
		res, err := chaos.Replay(os.Stdout, seed, planStr, *soakCycles, nil)
		if err != nil {
			fatalf("pfbench: replay: %v", err)
		}
		if len(res.Violations) > 0 {
			// Every chaos case runs with the flight recorder attached, so a
			// violating replay already carries its postmortem bundle.
			if *flightDump != "" && len(res.Bundle) > 0 {
				if err := os.WriteFile(*flightDump, res.Bundle, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "pfbench: flight bundle: %v\n", err)
				} else {
					fmt.Printf("flight bundle written to %s\n", *flightDump)
				}
			}
			os.Exit(1)
		}
		return
	}
	if *soak > 0 {
		experiments.SetParallelism(*parallel)
		rep, err := chaos.Soak(chaos.Options{
			Cases:       *soak,
			BaseSeed:    *soakSeed,
			Cycles:      *soakCycles,
			CycleBudget: *soakBudget,
			Out:         os.Stdout,
		})
		if err != nil {
			fatalf("pfbench: soak: %v", err)
		}
		if len(rep.Findings) > 0 || len(rep.Tasks.Failed()) > 0 {
			os.Exit(1)
		}
		return
	}

	// Profile outputs close explicitly, never via a bare deferred Close:
	// fatalf exits through os.Exit, which skips deferred calls, and a
	// swallowed Close error can silently truncate the profile on a full disk.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("pfbench: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatalf("pfbench: start CPU profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatalf("pfbench: close CPU profile: %v", err)
			}
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatalf("pfbench: -trace: %v", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			fatalf("pfbench: start trace: %v", err)
		}
		defer func() {
			trace.Stop()
			if err := f.Close(); err != nil {
				fatalf("pfbench: close trace: %v", err)
			}
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("pfbench: -memprofile: %v", err)
		}
		runtime.GC()
		werr := pprof.WriteHeapProfile(f)
		cerr := f.Close()
		if werr != nil {
			fatalf("pfbench: write heap profile: %v", werr)
		}
		if cerr != nil {
			fatalf("pfbench: close heap profile: %v", cerr)
		}
	}()

	experiments.SetParallelism(*parallel)
	experiments.SetLanes(*lanes)
	experiments.SetWarmCache(*warmCache)

	cfg := sim.SPR()
	if *machine == "emr" {
		cfg = sim.EMR()
	}

	runners := map[string]func(w io.Writer){
		"mlc": func(w io.Writer) {
			fmt.Fprint(w, experiments.RunMLC(cfg, *quick).Table())
		},
		"fig2": func(w io.Writer) {
			r := experiments.RunFig2(cfg, *quick)
			fmt.Fprint(w, r.Main.Table())
			fmt.Fprintln(w)
			fmt.Fprint(w, r.WrOnly.Table())
		},
		"fig3": func(w io.Writer) {
			fmt.Fprint(w, experiments.RunFig3(cfg, *quick).Table())
		},
		"fig4": func(w io.Writer) {
			fmt.Fprint(w, experiments.RunFig4(cfg, *quick).Table())
		},
		"emr": func(w io.Writer) {
			// Figures 14-16: the same characterization on the EMR machine.
			emr := sim.EMR()
			r := experiments.RunFig2(emr, *quick)
			fmt.Fprint(w, r.Main.Table())
			fmt.Fprintln(w)
			fmt.Fprint(w, r.WrOnly.Table())
			fmt.Fprintln(w)
			fmt.Fprint(w, experiments.RunFig3(emr, *quick).Table())
			fmt.Fprintln(w)
			fmt.Fprint(w, experiments.RunFig4(emr, *quick).Table())
		},
		"table7": func(w io.Writer) {
			r := experiments.RunTable7(cfg, *quick)
			fmt.Fprint(w, r.Table())
			fmt.Fprintf(w, "\nFOTS hot core path: %v; hot uncore path: %v (%.1f%% of uncore traffic)\n",
				r.FOTSHotCore, r.FOTSHotUncore, r.FOTSUncoreHWPF*100)
			fmt.Fprintf(w, "GCCS core-request growth snapshot2/snapshot1: %.1fx\n", r.GCCSReqGrowth)
		},
		"fig6": func(w io.Writer) {
			r := experiments.RunFig6(cfg, *quick)
			fmt.Fprint(w, r.Table())
			fmt.Fprintf(w, "\nmean DRd FlexBus+MC + CXL DIMM stall share: %.1f%%\n",
				r.DownstreamShare()*100)
		},
		"fig78": func(w io.Writer) {
			r := experiments.RunFig78(cfg, *quick)
			fmt.Fprint(w, r.Stall)
			fmt.Fprintln(w)
			fmt.Fprint(w, r.Queues)
			fmt.Fprintf(w, "\nin-core CXL-induced stall growth 20%%->100%%: %.2fx\n", r.CoreStallGrowth())
		},
		"fig910": func(w io.Writer) {
			r := experiments.RunFig910(cfg, *quick)
			fmt.Fprint(w, r.Throughput)
			fmt.Fprintln(w)
			fmt.Fprint(w, r.Stall)
			fmt.Fprintln(w)
			fmt.Fprint(w, r.Latency)
			fmt.Fprintln(w)
			fmt.Fprint(w, r.Queues)
			fmt.Fprintln(w, "\nculprits per load step:", strings.Join(r.Culprits, "; "))
			fmt.Fprintf(w, "YCSB throughput drop: %.1f%%; FlexBus+MC latency growth: %.2fx\n",
				r.ThroughputDrop()*100, r.FlexLatencyGrowth())
		},
		"fig11": func(w io.Writer) {
			for _, r := range experiments.RunFig11(cfg, *quick) {
				fmt.Fprint(w, r.Table())
				fmt.Fprintln(w)
			}
		},
		"fig12": func(w io.Writer) {
			fmt.Fprint(w, experiments.RunFig12(cfg, *quick).Table())
		},
		"fig13": func(w io.Writer) {
			r := experiments.RunFig13(cfg, *quick)
			fmt.Fprint(w, r.Table())
			ratio := 0.0
			if r.ColloidOps > 0 {
				ratio = r.GuidedOps / r.ColloidOps
			}
			fmt.Fprintf(w, "\nTPP+Colloid vs PathFinder-guided (write-heavy): %.0f vs %.0f ops (%.2fx)\n",
				r.ColloidOps, r.GuidedOps, ratio)
		},
		"overhead": func(w io.Writer) {
			fmt.Fprint(w, experiments.RunOverhead(cfg, *quick).Table())
		},
		// Extensions beyond the paper's artifacts.
		"baseline": func(w io.Writer) {
			fmt.Fprint(w, experiments.RunTMABaseline(cfg, *quick).Table())
		},
		"pool": func(w io.Writer) {
			fmt.Fprint(w, experiments.RunPool(cfg, *quick).Table())
		},
		"faults": func(w io.Writer) {
			r := experiments.RunFaults(cfg, *quick)
			fmt.Fprint(w, r.Sweep)
			fmt.Fprintln(w, "\nfault-domain culprit per rate:", strings.Join(r.Culprits, "; "))
			fmt.Fprintf(w, "YCSB throughput drop healthy -> sickest link: %.1f%%\n",
				r.ThroughputDrop()*100)
		},
		"sweep": func(w io.Writer) {
			fmt.Fprint(w, experiments.RunWarmSweep(cfg, *quick).Table())
		},
	}

	order := []string{"mlc", "fig2", "fig3", "fig4", "emr", "table7", "fig6",
		"fig78", "fig910", "fig11", "fig12", "fig13", "overhead", "baseline", "pool",
		"faults", "sweep"}

	if *exp == "all" {
		runAll(order, runners, *parallel)
	} else {
		run, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of: %s, all\n",
				*exp, strings.Join(order, ", "))
			os.Exit(2)
		}
		run(os.Stdout)
	}
	if *warmCache {
		// Confirm prefix reuse actually engaged (the same stats ship on
		// `pathfinder -serve` /status for soak runs).
		s := experiments.CheckpointCache()
		fmt.Fprintf(os.Stderr, "pfbench: checkpoint cache: %d images (%d bytes), %d hits, %d misses, %d forks\n",
			s.Entries, s.Bytes, s.Hits, s.Misses, s.Forks)
	}
}

// runAll executes the full suite.  Experiments run concurrently (each
// writing to its own buffer, on top of each experiment's own internal
// machine-level fan-out) but output is flushed strictly in suite order,
// so `-exp all` prints byte-identical text at any -parallel setting.
func runAll(order []string, runners map[string]func(io.Writer), workers int) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(order) {
		workers = len(order)
	}
	bufs := make([]bytes.Buffer, len(order))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, name := range order {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Suite-level profile attribution; the runner pool re-labels
			// its own workers per experiment fan-out.
			pprof.Do(context.Background(), pprof.Labels("experiment", name),
				func(context.Context) {
					fmt.Fprintf(&bufs[i], "==== %s ====\n", name)
					runners[name](&bufs[i])
					fmt.Fprintln(&bufs[i])
				})
		}(i, name)
	}
	wg.Wait()
	for i := range bufs {
		os.Stdout.Write(bufs[i].Bytes())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// Command pfbench regenerates the paper's tables and figures against the
// simulated machines: one experiment per artifact, selected with -exp.
// DESIGN.md's per-experiment index maps each name to its paper artifact;
// EXPERIMENTS.md records paper-vs-measured values from full runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pathfinder/internal/experiments"
	"pathfinder/internal/sim"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: mlc, fig2, fig3, fig4, emr, table7, fig6, fig78, fig910, fig11, fig12, fig13, overhead, faults, or all")
	machine := flag.String("machine", "spr", "machine model: spr or emr")
	quick := flag.Bool("quick", false, "shorter runs (coarser numbers)")
	flag.Parse()

	cfg := sim.SPR()
	if *machine == "emr" {
		cfg = sim.EMR()
	}

	runners := map[string]func(){
		"mlc": func() {
			fmt.Print(experiments.RunMLC(cfg, *quick).Table())
		},
		"fig2": func() {
			r := experiments.RunFig2(cfg, *quick)
			fmt.Print(r.Main.Table())
			fmt.Println()
			fmt.Print(r.WrOnly.Table())
		},
		"fig3": func() {
			fmt.Print(experiments.RunFig3(cfg, *quick).Table())
		},
		"fig4": func() {
			fmt.Print(experiments.RunFig4(cfg, *quick).Table())
		},
		"emr": func() {
			// Figures 14-16: the same characterization on the EMR machine.
			emr := sim.EMR()
			r := experiments.RunFig2(emr, *quick)
			fmt.Print(r.Main.Table())
			fmt.Println()
			fmt.Print(r.WrOnly.Table())
			fmt.Println()
			fmt.Print(experiments.RunFig3(emr, *quick).Table())
			fmt.Println()
			fmt.Print(experiments.RunFig4(emr, *quick).Table())
		},
		"table7": func() {
			r := experiments.RunTable7(cfg, *quick)
			fmt.Print(r.Table())
			fmt.Printf("\nFOTS hot core path: %v; hot uncore path: %v (%.1f%% of uncore traffic)\n",
				r.FOTSHotCore, r.FOTSHotUncore, r.FOTSUncoreHWPF*100)
			fmt.Printf("GCCS core-request growth snapshot2/snapshot1: %.1fx\n", r.GCCSReqGrowth)
		},
		"fig6": func() {
			r := experiments.RunFig6(cfg, *quick)
			fmt.Print(r.Table())
			fmt.Printf("\nmean DRd FlexBus+MC + CXL DIMM stall share: %.1f%%\n",
				r.DownstreamShare()*100)
		},
		"fig78": func() {
			r := experiments.RunFig78(cfg, *quick)
			fmt.Print(r.Stall)
			fmt.Println()
			fmt.Print(r.Queues)
			fmt.Printf("\nin-core CXL-induced stall growth 20%%->100%%: %.2fx\n", r.CoreStallGrowth())
		},
		"fig910": func() {
			r := experiments.RunFig910(cfg, *quick)
			fmt.Print(r.Throughput)
			fmt.Println()
			fmt.Print(r.Stall)
			fmt.Println()
			fmt.Print(r.Latency)
			fmt.Println()
			fmt.Print(r.Queues)
			fmt.Println("\nculprits per load step:", strings.Join(r.Culprits, "; "))
			fmt.Printf("YCSB throughput drop: %.1f%%; FlexBus+MC latency growth: %.2fx\n",
				r.ThroughputDrop()*100, r.FlexLatencyGrowth())
		},
		"fig11": func() {
			for _, r := range experiments.RunFig11(cfg, *quick) {
				fmt.Print(r.Table())
				fmt.Println()
			}
		},
		"fig12": func() {
			fmt.Print(experiments.RunFig12(cfg, *quick).Table())
		},
		"fig13": func() {
			r := experiments.RunFig13(cfg, *quick)
			fmt.Print(r.Table())
			ratio := 0.0
			if r.ColloidOps > 0 {
				ratio = r.GuidedOps / r.ColloidOps
			}
			fmt.Printf("\nTPP+Colloid vs PathFinder-guided (write-heavy): %.0f vs %.0f ops (%.2fx)\n",
				r.ColloidOps, r.GuidedOps, ratio)
		},
		"overhead": func() {
			fmt.Print(experiments.RunOverhead(cfg, *quick).Table())
		},
		// Extensions beyond the paper's artifacts.
		"baseline": func() {
			fmt.Print(experiments.RunTMABaseline(cfg, *quick).Table())
		},
		"pool": func() {
			fmt.Print(experiments.RunPool(cfg, *quick).Table())
		},
		"faults": func() {
			r := experiments.RunFaults(cfg, *quick)
			fmt.Print(r.Sweep)
			fmt.Println("\nfault-domain culprit per rate:", strings.Join(r.Culprits, "; "))
			fmt.Printf("YCSB throughput drop healthy -> sickest link: %.1f%%\n",
				r.ThroughputDrop()*100)
		},
	}

	order := []string{"mlc", "fig2", "fig3", "fig4", "emr", "table7", "fig6",
		"fig78", "fig910", "fig11", "fig12", "fig13", "overhead", "baseline", "pool",
		"faults"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			runners[name]()
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of: %s, all\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	run()
}

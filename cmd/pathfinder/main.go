// Command pathfinder is the profiler CLI (Figure 5-a's task specification):
// it runs applications from the catalog over the simulated machine with the
// requested memory placement, performs snapshot-based path-driven profiling,
// and prints the selected reports — path maps (PFBuilder), CXL-induced
// stall breakdowns (PFEstimator), queue estimates and culprits
// (PFAnalyzer), and cross-snapshot locality summaries (PFMaterializer).
//
// Example:
//
//	pathfinder -apps LBM:cxl,MCF:local -epochs 8 -report all
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pathfinder/internal/core"
	"pathfinder/internal/cxl"
	"pathfinder/internal/experiments"
	"pathfinder/internal/mem"
	"pathfinder/internal/mem/tier"
	"pathfinder/internal/obs"
	"pathfinder/internal/pmu"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pathfinder: "+format+"\n", args...)
	os.Exit(1)
}

// parsePlacement turns "local", "cxl", "remote" or "A:B" (local:CXL ratio)
// into a placement policy.
func parsePlacement(s string) (mem.Policy, error) {
	switch s {
	case "local":
		return mem.Fixed(0), nil
	case "remote":
		return mem.Fixed(1), nil
	case "cxl":
		return mem.Fixed(2), nil
	}
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("unknown placement %q (want local, remote, cxl, or a local:CXL ratio like 3:1)", s)
	}
	a, errA := strconv.Atoi(parts[0])
	b, errB := strconv.Atoi(parts[1])
	if errA != nil || errB != nil {
		return nil, fmt.Errorf("placement ratio %q is not numeric (want a local:CXL ratio like 3:1)", s)
	}
	if a <= 0 || b <= 0 {
		return nil, fmt.Errorf("placement ratio %q needs two positive parts (use local or cxl for one-sided placement)", s)
	}
	return mem.Interleave{A: 0, B: 2, RatioA: a, RatioB: b}, nil
}

// runStatus is the /status document served by -serve.  The run loop
// stores a fresh copy per epoch into an atomic.Value, so HTTP reads never
// race the single-goroutine simulator.
type runStatus struct {
	Machine     string       `json:"machine"`
	State       string       `json:"state"` // "running", "done"
	Epoch       int          `json:"epoch"`
	Epochs      int          `json:"epochs"`
	EpochCycles uint64       `json:"epoch_cycles"`
	Truncated   int          `json:"epochs_truncated"`
	Note        string       `json:"last_note,omitempty"`
	Apps        []statusApp  `json:"apps"`
	Engine      statusEngine `json:"engine"`
	Link        *statusLink  `json:"cxl_link,omitempty"`

	// Checkpoints reports the warmed-image cache (experiments.Sweep): soak
	// and sweep runs watch it to confirm warm-prefix reuse is engaging.
	Checkpoints experiments.CheckpointCacheStats `json:"checkpoint_cache"`
}

// statusEngine surfaces the run-ahead fast path's effectiveness: ops the
// core stepper executed inline versus events dispatched through the
// engine.  A healthy hit-dominated run keeps inline_steps well above
// dispatched_events.  The window section reports the parallel lane
// scheduler (DESIGN.md §12): lanes configured, windows opened, and barrier
// merges completed (zero under the sequential sweep).
type statusEngine struct {
	InlineSteps      uint64 `json:"inline_steps"`
	DispatchedEvents uint64 `json:"dispatched_events"`
	Lanes            int    `json:"lanes"`
	Windows          uint64 `json:"windows"`
	BarrierMerges    uint64 `json:"barrier_merges"`
}

type statusApp struct {
	Label string `json:"label"`
	Core  int    `json:"core"`
}

type statusLink struct {
	CRCErrors    float64 `json:"crc_errors"`
	Retries      float64 `json:"retries"`
	ReplayBytes  float64 `json:"replay_bytes"`
	DevTimeouts  float64 `json:"device_timeouts"`
	PoisonReads  float64 `json:"poison_reads"`
	ViralEntries float64 `json:"viral_entries"`
	FastFails    float64 `json:"fast_fails"`
	Isolated     bool    `json:"isolated"`
}

// reportNames are the report selectors -report accepts (besides "all").
var reportNames = []string{"paths", "stalls", "queues", "locality", "flows"}

// parseReports validates the -report list up front, so a typo fails with
// the valid choices instead of silently printing nothing.
func parseReports(s string) (map[string]bool, error) {
	want := map[string]bool{}
	for _, r := range strings.Split(s, ",") {
		name := strings.TrimSpace(r)
		if name == "" {
			continue
		}
		ok := name == "all"
		for _, v := range reportNames {
			if name == v {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown report %q (choose from: %s, all)",
				name, strings.Join(reportNames, ", "))
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("empty -report list (choose from: %s, all)",
			strings.Join(reportNames, ", "))
	}
	return want, nil
}

func main() {
	machine := flag.String("machine", "spr", "machine model: spr or emr")
	appsFlag := flag.String("apps", "LBM:cxl", "comma list of APP:PLACEMENT (placement: local, remote, cxl, or A:B local:CXL ratio)")
	wsMB := flag.Uint64("ws-mb", 64, "working-set size per application in MiB")
	epochs := flag.Int("epochs", 8, "profiling epochs (snapshots)")
	epochK := flag.Uint64("epoch-kcycles", 2000, "scheduling-epoch length in kilocycles")
	reports := flag.String("report", "all", "comma list of: paths, stalls, queues, locality, flows")
	llcScale := flag.Int("llc-scale", 4, "shrink the LLC by this factor (faster profiling of scaled working sets)")
	tpp := flag.Bool("tpp", false, "enable TPP page placement during the run")
	fault := flag.String("fault", "", "CXL link fault plan, e.g. 'seed=42,crc=1e-3,burst=100000:20000:0.5:400000,timeout=500000:50000,poison=0:64' (empty = healthy link)")
	listApps := flag.Bool("list-apps", false, "print the application catalog and exit")
	listEvents := flag.Bool("list-events", false, "print the PMU event catalog and exit")
	lanes := flag.Int("lanes", 0, "core-step scheduling: 0 auto (GOMAXPROCS worker lanes), 1 sequential sweep, n>1 capped parallel lanes, -1 engine dispatch only")
	serve := flag.String("serve", "", "serve /metrics, /status, /trace, /debug/pprof on this address (e.g. :6060); keeps serving after the run")
	traceSample := flag.Int("trace-sample", 0, "trace one request in N through the request path (0 = tracing off)")
	traceBuf := flag.Int("trace-buf", 4096, "request-path trace ring capacity in records")
	flightRing := flag.Int("flight", 4096, "flight-recorder per-core ring capacity in records (0 = recorder off)")
	flightTail := flag.Int("flight-tail", 512, "flight-recorder tail-store capacity in promoted records")
	flightDump := flag.String("flight-dump", "pathfinder-flight-bundle.json", "postmortem bundle path written on SIGQUIT or a profiler watchdog trip")
	flag.Parse()

	if *listEvents {
		t := &report.Table{Title: "PMU event catalog (paper Tables 1-4)",
			Cols: []string{"event", "unit", "scope", "kind", "description"}}
		for _, name := range pmu.Default.Names() {
			e, _ := pmu.Default.Lookup(name)
			in := pmu.Default.Info(e)
			t.AddRow(in.Name, in.Unit.String(), in.Scope.String(), in.Kind.String(), in.Desc)
		}
		fmt.Print(t)
		return
	}

	if *listApps {
		t := &report.Table{Title: "Application catalog (Table 6)",
			Cols: []string{"code", "benchmark", "suite", "working set (MB)", "shape"}}
		for _, a := range workload.Catalog() {
			t.AddRow(a.Name, a.Full, a.Suite, report.Num(a.WorkingSetMB), a.Shape.String())
		}
		fmt.Print(t)
		return
	}

	want, err := parseReports(*reports)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := sim.SPR()
	if *machine == "emr" {
		cfg = sim.EMR()
	}
	if *fault != "" {
		plan, err := cxl.ParseFaultPlan(*fault)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Faults = plan
	}
	if *llcScale > 1 {
		cfg.LLCSize /= *llcScale
		cfg.LLCSlices /= *llcScale
		if cfg.LLCSlices < cfg.SNCClusters {
			cfg.LLCSlices = cfg.SNCClusters
		}
	}

	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 256 << 30},
		{ID: 1, Kind: mem.RemoteDRAM, Socket: 1, Capacity: 256 << 30},
		{ID: 2, Kind: mem.CXLDRAM, Device: 0, Capacity: 256 << 30},
	})
	m := sim.New(cfg, as)
	m.SetLanes(*lanes)

	var tr *obs.Tracer
	if *traceSample > 0 {
		tr = obs.NewTracer(*traceBuf, *traceSample)
		tr.Enable()
		m.SetTracer(tr)
	}

	// The flight recorder is on by default: always-on tail capture is the
	// point, and the off-path cost with it attached is a couple of loads.
	var fl *obs.Flight
	if *flightRing > 0 {
		fl = obs.NewFlight(m.Cores(), *flightRing, *flightTail)
		fl.Enable()
		m.SetFlight(fl)
		fl.RegisterMetrics(obs.Default)
	}

	var runs []core.AppRun
	for i, spec := range strings.Split(*appsFlag, ",") {
		parts := strings.SplitN(strings.TrimSpace(spec), ":", 2)
		app, ok := workload.Lookup(parts[0])
		if !ok {
			fatalf("unknown application %q (try -list-apps)", parts[0])
		}
		placement := "cxl"
		if len(parts) == 2 {
			placement = parts[1]
		}
		pol, err := parsePlacement(placement)
		if err != nil {
			fatalf("%v", err)
		}
		reg, err := as.Alloc(*wsMB<<20, pol)
		if err != nil {
			fatalf("allocating %s: %v", app.Name, err)
		}
		if i >= m.Cores() {
			fatalf("more applications than cores (%d)", m.Cores())
		}
		runs = append(runs, core.AppRun{
			Label: app.Name,
			Core:  i,
			Gen:   app.Generator(workload.Region{Base: reg.Base, Size: reg.Size}, uint64(i+1)),
		})
	}

	var mgr *tier.Manager
	if *tpp {
		var err error
		mgr, err = tier.NewManager(as, m, 0, 2, tier.DefaultConfig())
		if err != nil {
			fatalf("tiering: %v", err)
		}
		m.SetAccessHook(func(_ int, la uint64, _ bool) { mgr.ObserveAccess(la) })
	}

	// status is declared ahead of the profiler so the flight-dump closure
	// (fired from the watchdog and the SIGQUIT handler) can embed /status.
	var status atomic.Value
	statusFn := func() any { return status.Load() }

	faultPlanStr := ""
	if cfg.Faults != nil {
		faultPlanStr = cfg.Faults.String()
	}
	var flightDumpFn func(trigger string) error
	if fl != nil {
		flightDumpFn = func(trigger string) error {
			err := obs.WriteBundleFile(*flightDump, obs.BundleOpts{
				Trigger:   trigger,
				Flight:    fl,
				Metrics:   obs.Default,
				Status:    statusFn,
				FaultPlan: faultPlanStr,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "pathfinder: flight bundle (%s) written to %s\n", trigger, *flightDump)
			return nil
		}
		// SIGQUIT dumps a postmortem bundle and keeps running — the live
		// equivalent of hitting /flight/dump, usable without -serve.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				if err := flightDumpFn("sigquit"); err != nil {
					fmt.Fprintf(os.Stderr, "pathfinder: flight dump: %v\n", err)
				}
			}
		}()
	}

	p, err := core.NewProfiler(core.Spec{
		Machine:     m,
		Apps:        runs,
		EpochCycles: sim.Cycles(*epochK) * 1000,
		Epochs:      *epochs,
		Mode:        core.ModeContinuous,
		Metrics:     obs.Default,
		Flight:      fl,
		FlightDump:  flightDumpFn,
	})
	if err != nil {
		fatalf("%v", err)
	}

	setStatus := func(state string, epoch, truncated int, note string, last *core.EpochResult) {
		st := runStatus{
			Machine:     *machine,
			State:       state,
			Epoch:       epoch,
			Epochs:      *epochs,
			EpochCycles: *epochK * 1000,
			Truncated:   truncated,
			Note:        note,
		}
		for _, run := range runs {
			st.Apps = append(st.Apps, statusApp{Label: run.Label, Core: run.Core})
		}
		st.Checkpoints = experiments.CheckpointCache()
		ws := m.WindowStats()
		st.Engine = statusEngine{
			InlineSteps:      m.InlineSteps(),
			DispatchedEvents: m.DispatchedEvents(),
			Lanes:            m.Lanes(),
			Windows:          ws.Windows,
			BarrierMerges:    ws.BarrierMerges,
		}
		if last != nil {
			s := last.Snapshot
			st.Link = &statusLink{
				CRCErrors:    s.CXL(0, pmu.CXLLinkCRCErrors),
				Retries:      s.CXL(0, pmu.CXLLinkRetries),
				ReplayBytes:  s.CXL(0, pmu.CXLLinkReplayBytes),
				DevTimeouts:  s.CXL(0, pmu.CXLDevTimeouts),
				PoisonReads:  s.CXL(0, pmu.CXLDevPoisonRd),
				ViralEntries: s.CXL(0, pmu.CXLDevViralEntries),
				FastFails:    s.M2P(0, pmu.M2PFastFails),
				Isolated:     m.DeviceIsolated(0),
			}
		}
		status.Store(&st)
	}
	setStatus("running", 0, 0, "", nil)

	var srv *obs.Server
	if *serve != "" {
		srv = obs.NewServer(obs.Default, tr, statusFn, cfg.GHz)
		srv.SetFlight(fl, faultPlanStr)
		addr, err := srv.Start(*serve)
		if err != nil {
			fatalf("-serve %s: %v", *serve, err)
		}
		fmt.Printf("pathfinder: serving on http://%s\n", addr)
	}

	var last *core.EpochResult
	truncated := 0
	note := ""
	for e := 0; e < *epochs; e++ {
		r, err := p.Step()
		if err != nil {
			fatalf("epoch %d: %v", e, err)
		}
		last = r
		if r.Truncated {
			truncated++
		}
		if r.Note != "" {
			note = r.Note
		}
		setStatus("running", e+1, truncated, note, last)
		if mgr != nil {
			mgr.Tick()
		}
	}
	setStatus("done", *epochs, truncated, note, last)

	all := want["all"]

	for _, run := range runs {
		label := run.Label
		fmt.Printf("==== %s (core %d) ====\n", label, run.Core)
		if all || want["flows"] {
			for _, f := range p.Flows(label, last.PathMaps[label]) {
				fmt.Println("mFlow:", f)
			}
			fmt.Println()
		}
		if all || want["paths"] {
			fmt.Print(report.PathMapTable(last.PathMaps[label]))
			fmt.Println()
		}
		if all || want["stalls"] {
			fmt.Print(report.StallTable(last.Stalls[label]))
			fmt.Println()
		}
		if all || want["queues"] {
			fmt.Print(report.QueueTable(last.Queues[label]))
			fmt.Println()
		}
		if all || want["locality"] {
			ws := p.Materializer().LocalityWindows(label, core.LvlCXL, 0.4)
			fmt.Printf("PFMaterializer: %d stable CXL-traffic windows\n", len(ws))
			for i, w := range ws {
				fmt.Printf("  window %d: epochs [%d,%d), mean CXL hits %.0f\n",
					i, w.Segment.Start, w.Segment.End, w.MeanHits)
			}
			fmt.Println()
		}
	}
	if mgr != nil {
		st := mgr.Stats()
		fmt.Printf("TPP: %d pages promoted, %d demoted, %d accesses sampled\n",
			st.Promoted, st.Demoted, st.SampledAccesses)
	}
	// CXL 3.x QoS telemetry: the device's dominant DevLoad class.
	fmt.Printf("CXL device QoS (DevLoad): %s\n", m.DevLoad(0))
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		s := last.Snapshot
		fmt.Printf("CXL link health (last epoch): %.0f CRC errors, %.0f retries, %.0f replay bytes, %.0f device timeouts\n",
			s.CXL(0, pmu.CXLLinkCRCErrors), s.CXL(0, pmu.CXLLinkRetries),
			s.CXL(0, pmu.CXLLinkReplayBytes), s.CXL(0, pmu.CXLDevTimeouts))
	}
	if srv != nil {
		fmt.Printf("pathfinder: run complete; still serving on http://%s (interrupt to exit)\n", srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		signal.Stop(sig)
		// Graceful drain: stop accepting connections, let in-flight scrapes
		// finish, then force-close if they overstay.  A second interrupt
		// during the drain kills the process the usual way.
		fmt.Println("pathfinder: shutting down (draining connections)")
		if err := srv.Shutdown(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "pathfinder: forced shutdown: %v\n", err)
		}
	}
}

// Command pfstat is the perf-stat equivalent for the simulated machine:
// it runs a catalog application with the requested memory placement and
// prints the selected PMU events, either as run totals or as per-interval
// deltas (like `perf stat -I`).
//
// Example:
//
//	pfstat -e 'core0/mem_load_retired.l1_miss/,cha*/unc_cha_tor_inserts.ia_drd.miss_cxl/' \
//	       -app LBM:cxl -kcycles 4000 -interval-kcycles 500
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pathfinder/internal/mem"
	"pathfinder/internal/perf"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pfstat: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	events := flag.String("e", "core0/inst_retired.any/,core0/cpu_clk_unhalted.thread/",
		"comma list of event specs (pmu/event/)")
	appSpec := flag.String("app", "LBM:cxl", "APP:PLACEMENT to run (placement: local, remote, cxl)")
	kcycles := flag.Uint64("kcycles", 4000, "run length in kilocycles")
	interval := flag.Uint64("interval-kcycles", 0, "print deltas every N kilocycles (0 = totals only)")
	wsMB := flag.Uint64("ws-mb", 64, "working-set size in MiB")
	machine := flag.String("machine", "spr", "machine model: spr or emr")
	flag.Parse()

	cfg := sim.SPR()
	if *machine == "emr" {
		cfg = sim.EMR()
	}
	cfg.LLCSize /= 4
	cfg.LLCSlices /= 4
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 64 << 30},
		{ID: 1, Kind: mem.RemoteDRAM, Socket: 1, Capacity: 64 << 30},
		{ID: 2, Kind: mem.CXLDRAM, Device: 0, Capacity: 64 << 30},
	})
	m := sim.New(cfg, as)

	parts := strings.SplitN(*appSpec, ":", 2)
	app, ok := workload.Lookup(parts[0])
	if !ok {
		fatalf("unknown application %q", parts[0])
	}
	node := mem.NodeID(2)
	if len(parts) == 2 {
		switch parts[1] {
		case "local":
			node = 0
		case "remote":
			node = 1
		case "cxl":
			node = 2
		default:
			fatalf("bad placement %q", parts[1])
		}
	}
	reg, err := as.Alloc(*wsMB<<20, mem.Fixed(node))
	if err != nil {
		fatalf("%v", err)
	}
	m.Attach(0, app.Generator(workload.Region{Base: reg.Base, Size: reg.Size}, 1))

	specs := strings.Split(*events, ",")
	for i := range specs {
		specs[i] = strings.TrimSpace(specs[i])
	}
	sess, warns, err := perf.OpenLenient(m, specs...)
	if err != nil {
		fatalf("%v", err)
	}
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "pfstat: warning: %s\n", w)
	}
	if g := sess.MaxGroups(); g > 1 {
		fmt.Fprintf(os.Stderr, "pfstat: note: %d multiplex groups on the busiest PMU (run fraction %.2f)\n",
			g, 1/float64(g))
	}

	total := sim.Cycles(*kcycles) * 1000
	if *interval == 0 {
		m.Run(total)
		vals := sess.Read()
		t := &report.Table{Title: fmt.Sprintf("%s on %s, %dk cycles", app.Name, parts[1], *kcycles),
			Cols: []string{"event", "count"}}
		for i, sp := range sess.Specs() {
			t.AddRow(sp.String(), report.Num(float64(vals[i])))
		}
		fmt.Print(t)
		return
	}

	step := sim.Cycles(*interval) * 1000
	t := &report.Table{Title: fmt.Sprintf("%s on %s, deltas every %dk cycles", app.Name, parts[1], *interval),
		Cols: []string{"kcycle"}}
	for _, sp := range sess.Specs() {
		t.Cols = append(t.Cols, sp.String())
	}
	for at := sim.Cycles(0); at < total; at += step {
		m.Run(step)
		deltas := sess.ReadDelta()
		row := []string{report.Num(float64(at+step) / 1000)}
		for _, d := range deltas {
			row = append(row, report.Num(float64(d)))
		}
		t.AddRow(row...)
	}
	fmt.Print(t)
}

// Command pfstat is the perf-stat equivalent for the simulated machine:
// it runs a catalog application with the requested memory placement and
// prints the selected PMU events, either as run totals or as per-interval
// deltas (like `perf stat -I`).
//
// Example:
//
//	pfstat -e 'core0/mem_load_retired.l1_miss/,cha*/unc_cha_tor_inserts.ia_drd.miss_cxl/' \
//	       -app LBM:cxl -kcycles 4000 -interval-kcycles 500
//
// With -bundle it instead summarizes a flight-recorder postmortem bundle:
// promotion counts, thresholds, and how the promoted tail's per-stage
// residency compares against the whole recorded population.
//
// With -status it summarizes a live `-serve` /status document — run state,
// engine fast-path counters, and the checkpoint cache — so soak and sweep
// runs can confirm warm-prefix reuse is engaging without parsing JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/perf"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pfstat: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	events := flag.String("e", "core0/inst_retired.any/,core0/cpu_clk_unhalted.thread/",
		"comma list of event specs (pmu/event/)")
	appSpec := flag.String("app", "LBM:cxl", "APP:PLACEMENT to run (placement: local, remote, cxl)")
	kcycles := flag.Uint64("kcycles", 4000, "run length in kilocycles")
	interval := flag.Uint64("interval-kcycles", 0, "print deltas every N kilocycles (0 = totals only)")
	wsMB := flag.Uint64("ws-mb", 64, "working-set size in MiB")
	machine := flag.String("machine", "spr", "machine model: spr or emr")
	bundlePath := flag.String("bundle", "", "summarize this flight-recorder bundle instead of running")
	statusAddr := flag.String("status", "", "summarize a live -serve /status document (host:port or URL) instead of running")
	flag.Parse()

	if *bundlePath != "" {
		summarizeBundle(*bundlePath)
		return
	}
	if *statusAddr != "" {
		summarizeStatus(*statusAddr)
		return
	}

	cfg := sim.SPR()
	if *machine == "emr" {
		cfg = sim.EMR()
	}
	cfg.LLCSize /= 4
	cfg.LLCSlices /= 4
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 64 << 30},
		{ID: 1, Kind: mem.RemoteDRAM, Socket: 1, Capacity: 64 << 30},
		{ID: 2, Kind: mem.CXLDRAM, Device: 0, Capacity: 64 << 30},
	})
	m := sim.New(cfg, as)

	parts := strings.SplitN(*appSpec, ":", 2)
	app, ok := workload.Lookup(parts[0])
	if !ok {
		fatalf("unknown application %q", parts[0])
	}
	node := mem.NodeID(2)
	if len(parts) == 2 {
		switch parts[1] {
		case "local":
			node = 0
		case "remote":
			node = 1
		case "cxl":
			node = 2
		default:
			fatalf("bad placement %q", parts[1])
		}
	}
	reg, err := as.Alloc(*wsMB<<20, mem.Fixed(node))
	if err != nil {
		fatalf("%v", err)
	}
	m.Attach(0, app.Generator(workload.Region{Base: reg.Base, Size: reg.Size}, 1))

	specs := strings.Split(*events, ",")
	for i := range specs {
		specs[i] = strings.TrimSpace(specs[i])
	}
	sess, warns, err := perf.OpenLenient(m, specs...)
	if err != nil {
		fatalf("%v", err)
	}
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "pfstat: warning: %s\n", w)
	}
	if g := sess.MaxGroups(); g > 1 {
		fmt.Fprintf(os.Stderr, "pfstat: note: %d multiplex groups on the busiest PMU (run fraction %.2f)\n",
			g, 1/float64(g))
	}

	total := sim.Cycles(*kcycles) * 1000
	if *interval == 0 {
		m.Run(total)
		vals := sess.Read()
		t := &report.Table{Title: fmt.Sprintf("%s on %s, %dk cycles", app.Name, parts[1], *kcycles),
			Cols: []string{"event", "count"}}
		for i, sp := range sess.Specs() {
			t.AddRow(sp.String(), report.Num(float64(vals[i])))
		}
		fmt.Print(t)
		return
	}

	step := sim.Cycles(*interval) * 1000
	t := &report.Table{Title: fmt.Sprintf("%s on %s, deltas every %dk cycles", app.Name, parts[1], *interval),
		Cols: []string{"kcycle"}}
	for _, sp := range sess.Specs() {
		t.Cols = append(t.Cols, sp.String())
	}
	for at := sim.Cycles(0); at < total; at += step {
		m.Run(step)
		deltas := sess.ReadDelta()
		row := []string{report.Num(float64(at+step) / 1000)}
		for _, d := range deltas {
			row = append(row, report.Num(float64(d)))
		}
		t.AddRow(row...)
	}
	fmt.Print(t)
}

// statusDoc mirrors the fields of the -serve /status document pfstat
// summarizes; unknown fields are ignored so the two binaries can evolve
// independently.
type statusDoc struct {
	Machine     string `json:"machine"`
	State       string `json:"state"`
	Epoch       int    `json:"epoch"`
	Epochs      int    `json:"epochs"`
	EpochCycles uint64 `json:"epoch_cycles"`
	Engine      struct {
		InlineSteps      uint64 `json:"inline_steps"`
		DispatchedEvents uint64 `json:"dispatched_events"`
		Lanes            int    `json:"lanes"`
		Windows          uint64 `json:"windows"`
	} `json:"engine"`
	Checkpoints struct {
		Entries int    `json:"entries"`
		Bytes   int    `json:"bytes"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Forks   uint64 `json:"forks"`
	} `json:"checkpoint_cache"`
}

// summarizeStatus fetches and prints a live /status document.  addr may be
// a bare host:port (the /status path and scheme are filled in) or a full
// URL.
func summarizeStatus(addr string) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/status") {
		url = strings.TrimSuffix(url, "/") + "/status"
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fatalf("fetching %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("fetching %s: %s", url, resp.Status)
	}
	var doc statusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		fatalf("decoding %s: %v", url, err)
	}

	t := &report.Table{Title: fmt.Sprintf("status %s", url),
		Cols: []string{"property", "value"}}
	t.AddRow("machine", doc.Machine)
	t.AddRow("state", doc.State)
	t.AddRow("epoch", fmt.Sprintf("%d/%d (%d kcycles each)", doc.Epoch, doc.Epochs, doc.EpochCycles/1000))
	t.AddRow("engine inline steps", fmt.Sprint(doc.Engine.InlineSteps))
	t.AddRow("engine dispatched events", fmt.Sprint(doc.Engine.DispatchedEvents))
	t.AddRow("engine lanes / windows", fmt.Sprintf("%d / %d", doc.Engine.Lanes, doc.Engine.Windows))
	c := doc.Checkpoints
	t.AddRow("checkpoint images", fmt.Sprintf("%d (%d bytes)", c.Entries, c.Bytes))
	t.AddRow("checkpoint hits/misses", fmt.Sprintf("%d / %d", c.Hits, c.Misses))
	t.AddRow("checkpoint forks", fmt.Sprint(c.Forks))
	fmt.Print(t)
	if c.Misses > 0 && c.Hits == 0 && c.Forks == 0 {
		fmt.Println("note: images were warmed but never forked — sweeps may not be routing through the cache")
	}
}

// tailStageAgg accumulates the promoted tail's per-stage cycles using the
// same segmentation the recorder applies to the whole population, so the
// two means are directly comparable.
type tailStageAgg struct {
	n                         uint64
	total, core, l2, cha, dev uint64
}

func (a *tailStageAgg) add(r *obs.FlightRec) {
	lat := r.Latency()
	a.n++
	a.total += lat
	l2 := uint64(r.L2Start)
	tor := uint64(r.TOREnter)
	mem := uint64(r.MemEnter)
	if l2 == 0 {
		a.core += lat
	} else {
		a.core += l2
	}
	if tor > l2 && l2 > 0 {
		a.l2 += tor - l2
	}
	if mem > tor && tor > 0 {
		a.cha += mem - tor
	}
	if mem > 0 && lat > mem {
		a.dev += lat - mem
	}
}

// summarizeBundle prints the postmortem digest of a dumped flight bundle:
// what triggered it, how much the recorder saw, where the promotion
// thresholds sat, and how the promoted tail's stage residency skews
// against the full recorded population (the "why is the tail slow" view).
func summarizeBundle(path string) {
	b, err := obs.ReadBundleFile(path)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	fl := &b.Flight

	t := &report.Table{Title: fmt.Sprintf("flight bundle %s", path),
		Cols: []string{"property", "value"}}
	t.AddRow("trigger", b.Trigger)
	t.AddRow("epoch", fmt.Sprint(b.Epoch))
	t.AddRow("cores", fmt.Sprint(fl.Cores))
	t.AddRow("records filed", fmt.Sprint(fl.Records))
	t.AddRow("promoted to tail", fmt.Sprint(fl.Promoted))
	t.AddRow("tail retained", fmt.Sprintf("%d (cap %d)", len(fl.Tail), fl.TailCap))
	if b.FaultPlan != "" {
		t.AddRow("fault plan", b.FaultPlan)
	}
	fmt.Print(t)
	fmt.Println()

	// Split the retained tail by class with the recorder's own segmentation.
	var tails [2]tailStageAgg
	for i := range fl.Tail {
		tails[fl.Tail[i].Class&1].add(&fl.Tail[i].FlightRec)
	}

	for _, cs := range fl.Classes {
		if cs.Records == 0 {
			continue
		}
		var ta *tailStageAgg
		for c := range tails {
			if obs.FlightClassName(uint8(c)) == cs.Name {
				ta = &tails[c]
			}
		}
		ct := &report.Table{
			Title: fmt.Sprintf("%s: %d records, %d promoted, threshold %s cyc",
				cs.Name, cs.Records, cs.Promoted, report.Num(cs.Threshold)),
			Cols: []string{"stage", "all mean cyc", "tail mean cyc", "tail/all"},
		}
		addStage := func(name string, all, tail uint64, tailN uint64) {
			allMean := float64(all) / float64(cs.Records)
			row := []string{name, report.Num(allMean), "n/a", "n/a"}
			if tailN > 0 {
				tailMean := float64(tail) / float64(tailN)
				row[2] = report.Num(tailMean)
				if allMean > 0 {
					row[3] = fmt.Sprintf("%.1fx", tailMean/allMean)
				}
			}
			ct.AddRow(row...)
		}
		var tn, tt, tc, tl, th, td uint64
		if ta != nil {
			tn, tt, tc, tl, th, td = ta.n, ta.total, ta.core, ta.l2, ta.cha, ta.dev
		}
		addStage("end-to-end", cs.TotalCycles, tt, tn)
		addStage("core (pre-L2)", cs.CoreCycles, tc, tn)
		addStage("L2", cs.L2Cycles, tl, tn)
		addStage("CHA/mesh", cs.CHACycles, th, tn)
		addStage("device", cs.DevCycles, td, tn)
		fmt.Print(ct)
		fmt.Println()
	}

	if len(b.Aux) > 0 {
		fmt.Printf("aux: %s\n", b.Aux)
	}
}

// Command pftrace records, inspects, and replays memory-access traces:
// the trace-driven methodology for feeding one captured op stream to many
// simulated configurations.  The spans subcommand traces the request path
// itself — per-request stage waterfalls through SB/LFB, L2, CHA, and the
// IMC or M2PCIe/CXL backends — and cross-checks observed residency against
// the PFAnalyzer queue estimates.
//
//	pftrace record -app FOTS -ops 200000 -o fots.trc
//	pftrace info   -i fots.trc
//	pftrace replay -i fots.trc -node cxl
//	pftrace spans  -node cxl -o waterfall.json   # open in Perfetto
//	pftrace bundle -i flight-bundle.json -o tail.json   # promoted tail as Perfetto spans
package main

import (
	"flag"
	"fmt"
	"os"

	"pathfinder/internal/core"
	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/pmu"
	"pathfinder/internal/report"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pftrace: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: pftrace record|info|replay|spans|bundle [flags]")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "spans":
		spans(os.Args[2:])
	case "bundle":
		bundle(os.Args[2:])
	default:
		fatalf("unknown subcommand %q", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appName := fs.String("app", "LBM", "catalog application to record")
	ops := fs.Uint64("ops", 100_000, "operations to record")
	wsMB := fs.Uint64("ws-mb", 64, "working-set size in MiB")
	out := fs.String("o", "app.trc", "output trace file")
	seed := fs.Uint64("seed", 1, "generator seed")
	_ = fs.Parse(args)

	app, ok := workload.Lookup(*appName)
	if !ok {
		fatalf("unknown application %q", *appName)
	}
	g := app.Generator(workload.Region{Base: 0, Size: *wsMB << 20}, *seed)
	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := workload.WriteTrace(f, g, *ops); err != nil {
		fatalf("recording: %v", err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d ops of %s to %s (%d bytes, %.2f B/op)\n",
		*ops, app.Name, *out, st.Size(), float64(st.Size())/float64(*ops))
}

func loadTrace(path string) []workload.Op {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	ops, err := workload.ReadTrace(f)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return ops
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "app.trc", "trace file")
	_ = fs.Parse(args)

	ops := loadTrace(*in)
	var loads, stores, prefetches, deps int
	lines := map[uint64]bool{}
	var minA, maxA uint64 = ^uint64(0), 0
	for _, op := range ops {
		switch op.Kind {
		case workload.Load:
			loads++
		case workload.Store:
			stores++
		case workload.Prefetch:
			prefetches++
		}
		if op.Dep {
			deps++
		}
		lines[op.Addr&^63] = true
		if op.Addr < minA {
			minA = op.Addr
		}
		if op.Addr > maxA {
			maxA = op.Addr
		}
	}
	t := &report.Table{Title: *in, Cols: []string{"property", "value"}}
	t.AddRow("operations", fmt.Sprint(len(ops)))
	t.AddRow("loads", fmt.Sprint(loads))
	t.AddRow("stores", fmt.Sprint(stores))
	t.AddRow("sw prefetches", fmt.Sprint(prefetches))
	t.AddRow("dependent ops", fmt.Sprint(deps))
	t.AddRow("distinct lines", fmt.Sprint(len(lines)))
	t.AddRow("footprint", fmt.Sprintf("%.1f MiB", float64(len(lines))*64/(1<<20)))
	t.AddRow("address span", fmt.Sprintf("%#x..%#x", minA, maxA))
	fmt.Print(t)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "app.trc", "trace file")
	node := fs.String("node", "cxl", "placement: local, remote, or cxl")
	machine := fs.String("machine", "spr", "machine model: spr or emr")
	_ = fs.Parse(args)

	ops := loadTrace(*in)
	var maxAddr uint64
	for _, op := range ops {
		if op.Addr > maxAddr {
			maxAddr = op.Addr
		}
	}

	cfg := sim.SPR()
	if *machine == "emr" {
		cfg = sim.EMR()
	}
	cfg.LLCSize /= 4
	cfg.LLCSlices /= 4
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 256 << 30},
		{ID: 1, Kind: mem.RemoteDRAM, Socket: 1, Capacity: 256 << 30},
		{ID: 2, Kind: mem.CXLDRAM, Device: 0, Capacity: 256 << 30},
	})
	var id mem.NodeID
	switch *node {
	case "local":
		id = 0
	case "remote":
		id = 1
	case "cxl":
		id = 2
	default:
		fatalf("bad node %q", *node)
	}
	if _, err := as.Alloc(maxAddr+4096, mem.Fixed(id)); err != nil {
		fatalf("allocating trace footprint: %v", err)
	}
	m := sim.New(cfg, as)
	m.Attach(0, workload.NewReplay(ops, false))
	for m.Core(0).Running() {
		m.Run(5_000_000)
	}
	m.Sync()

	b := m.Core(0).Bank()
	cycles := b.Read(pmu.CPUClkUnhalted)
	t := &report.Table{Title: fmt.Sprintf("replay of %s on %s (%s)", *in, *node, cfg.Name),
		Cols: []string{"metric", "value"}}
	t.AddRow("cycles", fmt.Sprint(cycles))
	t.AddRow("ns", report.Num(float64(cycles)/cfg.GHz))
	t.AddRow("loads", fmt.Sprint(b.Read(pmu.MemInstAllLoads)))
	t.AddRow("l1 hit rate", report.Pct(float64(b.Read(pmu.MemLoadL1Hit))/
		maxf(float64(b.Read(pmu.MemInstAllLoads)), 1)))
	lat := float64(b.Read(pmu.MemTransLoadLatency)) / maxf(float64(b.Read(pmu.MemTransLoadCount)), 1)
	t.AddRow("avg load latency (cyc)", report.Num(lat))
	fmt.Print(t)
}

// spans traces the request path of a dependent pointer chase (or a catalog
// application) at full sampling, prints the per-stage residency waterfall,
// cross-checks it against AnalyzeQueues' Little's-law estimates, and
// optionally exports Chrome trace_event JSON for Perfetto.
func spans(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	appName := fs.String("app", "", "catalog application (default: dependent pointer chase)")
	node := fs.String("node", "cxl", "placement: local, remote, or cxl")
	machine := fs.String("machine", "spr", "machine model: spr or emr")
	kcycles := fs.Uint64("kcycles", 2000, "cycles to simulate, in kilocycles")
	sample := fs.Int("sample", 1, "trace one request in N")
	bufCap := fs.Int("buf", 1<<14, "trace ring capacity in records")
	wsMB := fs.Uint64("ws-mb", 16, "working-set size in MiB")
	out := fs.String("o", "", "write Chrome trace_event JSON here (open in Perfetto)")
	_ = fs.Parse(args)

	cfg := sim.SPR()
	if *machine == "emr" {
		cfg = sim.EMR()
	}
	cfg.LLCSize /= 4
	cfg.LLCSlices /= 4
	if *appName == "" {
		// Demand-only pointer chase: prefetch traffic is untraced, so it
		// would widen the PMU integrals relative to the demand spans and
		// blur the cross-check.
		cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
	}
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 256 << 30},
		{ID: 1, Kind: mem.RemoteDRAM, Socket: 1, Capacity: 256 << 30},
		{ID: 2, Kind: mem.CXLDRAM, Device: 0, Capacity: 256 << 30},
	})
	var id mem.NodeID
	switch *node {
	case "local":
		id = 0
	case "remote":
		id = 1
	case "cxl":
		id = 2
	default:
		fatalf("bad node %q", *node)
	}
	reg, err := as.Alloc(*wsMB<<20, mem.Fixed(id))
	if err != nil {
		fatalf("allocating working set: %v", err)
	}

	m := sim.New(cfg, as)
	tr := obs.NewTracer(*bufCap, *sample)
	tr.Enable()
	m.SetTracer(tr)

	wr := workload.Region{Base: reg.Base, Size: reg.Size}
	var gen workload.Generator
	label := "pointer chase"
	if *appName != "" {
		app, ok := workload.Lookup(*appName)
		if !ok {
			fatalf("unknown application %q", *appName)
		}
		gen = app.Generator(wr, 7)
		label = app.Name
	} else {
		gen = workload.NewPointerChase(wr, 2, 7)
	}
	m.Attach(0, gen)

	c := core.NewCapturer(m)
	m.Run(sim.Cycles(*kcycles) * 1000)
	m.Sync()
	snap := c.Capture()
	clocks := snap.Cycles()

	stats, committed, dropped := tr.Stats()
	if committed == 0 {
		fatalf("no requests traced (is the workload running?)")
	}
	fmt.Printf("%s on %s (%s): traced %d requests (1 in %d), %d dropped from ring\n\n",
		label, *node, cfg.Name, committed, tr.Every(), dropped)

	t := &report.Table{Title: "request-path waterfall (per-stage residency)",
		Cols: []string{"stage", "spans", "cycles", "avg cyc/span", "residency (occupancy)"}}
	for st := obs.Stage(0); st < obs.StageCount; st++ {
		s := stats[st]
		if s.Spans == 0 {
			continue
		}
		t.AddRow(st.String(), fmt.Sprint(s.Spans), fmt.Sprint(s.Cycles),
			report.Num(float64(s.Cycles)/float64(s.Spans)),
			report.Num(float64(s.Cycles)/clocks))
	}
	fmt.Print(t)
	fmt.Println()

	// Cross-check against PFAnalyzer on the CXL path: the queue estimates
	// price the same intervals through PMU occupancy integrals, so the two
	// views must agree if the tracer's stage boundaries are honest.
	if *node == "cxl" {
		k := core.ConstsFor(cfg)
		plan := core.NewPlan(c.Index(), []int{0}, 0)
		var qr core.QueueReport
		plan.AnalyzeQueuesInto(snap, k, &qr)

		obsDIMM := float64(stats[obs.StageCXLDevQ].Cycles+stats[obs.StageCXLMedia].Cycles) / clocks
		nReads := float64(stats[obs.StageM2PCIe].Spans)
		obsFlex := float64(stats[obs.StageM2PCIe].Cycles)/clocks + (nReads/clocks)*k.LinkTransit

		ct := &report.Table{Title: "observed residency vs AnalyzeQueues estimate (DRd path)",
			Cols: []string{"component", "observed", "estimated", "delta"}}
		addCheck := func(name string, got, want float64) {
			delta := "n/a"
			if want != 0 {
				delta = report.Pct((got - want) / want)
			}
			ct.AddRow(name, report.Num(got), report.Num(want), delta)
		}
		addCheck("FlexBus+MC", obsFlex, qr.Q[core.PathDRd][core.CompFlexBusMC])
		addCheck("CXL DIMM", obsDIMM, qr.Q[core.PathDRd][core.CompCXLDIMM])
		fmt.Print(ct)
		fmt.Println()
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		recs := tr.Records()
		werr := obs.WriteChromeTrace(f, recs, cfg.GHz)
		cerr := f.Close()
		if werr != nil {
			fatalf("writing %s: %v", *out, werr)
		}
		if cerr != nil {
			fatalf("closing %s: %v", *out, cerr)
		}
		fmt.Printf("wrote %d records to %s — open at https://ui.perfetto.dev\n", len(recs), *out)
	}
}

// bundle renders a flight-recorder postmortem bundle's promoted tail
// records as Perfetto spans: one track per (core, request) with the
// issue->done envelope and the L2/CHA/device segments the packed record's
// stage deltas allow.  The device segment is labeled with the serving
// backend (IMC for DRAM, FlexBus for CXL).
func bundle(args []string) {
	fs := flag.NewFlagSet("bundle", flag.ExitOnError)
	in := fs.String("i", "pathfinder-flight-bundle.json", "postmortem bundle file")
	out := fs.String("o", "flight-tail.json", "Chrome trace_event JSON output (open in Perfetto)")
	ghz := fs.Float64("ghz", 2.0, "core clock in GHz for cycle->time conversion")
	_ = fs.Parse(args)

	b, err := obs.ReadBundleFile(*in)
	if err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	tail := b.Flight.Tail
	if len(tail) == 0 {
		fatalf("%s: bundle (trigger %q) has no promoted tail records", *in, b.Trigger)
	}

	recs := make([]obs.ReqRec, 0, len(tail))
	for i := range tail {
		t := &tail[i]
		loc := sim.ServeLoc(t.Loc)
		r := obs.ReqRec{
			ID:    uint64(t.Seq),
			Core:  int32(t.Core),
			Addr:  t.Addr,
			Class: obs.FlightClassName(t.Class),
			Loc:   loc.String(),
		}
		r.Span(obs.StageReq, t.Issue, t.Done)
		// Stage deltas are cycle offsets from issue; zero means the request
		// never reached that stage, so only the segments that exist render.
		l2 := t.Issue + uint64(t.L2Start)
		tor := t.Issue + uint64(t.TOREnter)
		memEnter := t.Issue + uint64(t.MemEnter)
		if t.L2Start > 0 && t.TOREnter > t.L2Start {
			r.Span(obs.StageL2, l2, tor)
		}
		if t.TOREnter > 0 && t.MemEnter > t.TOREnter {
			r.Span(obs.StageCHA, tor, memEnter)
		}
		if t.MemEnter > 0 && t.Done > memEnter {
			st := obs.StageIMC
			if loc == sim.SrvCXL {
				st = obs.StageCXLLink
			}
			r.Span(st, memEnter, t.Done)
		}
		recs = append(recs, r)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	werr := obs.WriteChromeTrace(f, recs, *ghz)
	cerr := f.Close()
	if werr != nil {
		fatalf("writing %s: %v", *out, werr)
	}
	if cerr != nil {
		fatalf("closing %s: %v", *out, cerr)
	}
	fmt.Printf("bundle %s (trigger %q, epoch %d): wrote %d promoted spans to %s — open at https://ui.perfetto.dev\n",
		*in, b.Trigger, b.Epoch, len(recs), *out)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Command benchjson converts `go test -bench` output into a stable JSON
// document so the perf trajectory of the simulator hot paths is
// comparable across commits (see `make bench-json`).
//
//	go test -run '^$' -bench Sim -benchmem . | benchjson -o BENCH_20260101.json
//
// Every "<value> <unit>" pair of each benchmark line is kept, and a
// derived sim_ops_per_sec is added for benchmarks reporting ns/op: the
// micro-benchmarks simulate one workload operation per iteration, so
// 1e9/ns-per-op is the simulator's operation throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pathfinder/internal/benchparse"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	lanes := flag.String("lanes", "auto",
		"lane config the benchmarks ran under (the -lanes policy; recorded so benchregress refuses cross-config comparisons)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	doc, err := benchparse.Parse(in)
	if err != nil {
		fatal(err)
	}
	doc.Date = time.Now().UTC().Format("2006-01-02T15:04:05Z")
	// GoMaxProcs is parsed from the -N benchmark-name suffixes; Lanes is
	// declared by the caller (the Makefile pins both).  Together they make
	// the snapshot's lane config explicit, so benchregress can refuse to
	// compare runs measured under different window-scheduler parallelism.
	doc.Lanes = *lanes

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

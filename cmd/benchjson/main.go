// Command benchjson converts `go test -bench` output into a stable JSON
// document so the perf trajectory of the simulator hot paths is
// comparable across commits (see `make bench-json`).
//
//	go test -run '^$' -bench Sim -benchmem . | benchjson -o BENCH_20260101.json
//
// Every "<value> <unit>" pair of each benchmark line is kept, and a
// derived sim_ops_per_sec is added for benchmarks reporting ns/op: the
// micro-benchmarks simulate one workload operation per iteration, so
// 1e9/ns-per-op is the simulator's operation throughput.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	SimOpsSec  float64            `json:"sim_ops_per_sec,omitempty"`
}

// Doc is the emitted file.
type Doc struct {
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	doc := Doc{Date: time.Now().UTC().Format("2006-01-02T15:04:05Z")}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// parseLine parses one result line:
//
//	BenchmarkSimCXLStream-8   300000   671.0 ns/op   43 B/op   1 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix; it is not part of the identity.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
		b.SimOpsSec = 1e9 / ns
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// Command mlc is the Intel Memory Latency Checker equivalent for the
// simulated machine: it reports idle latency and peak bandwidth for the
// local, cross-NUMA, and CXL memory tiers (the paper's §2.3 numbers).
package main

import (
	"flag"
	"fmt"

	"pathfinder/internal/experiments"
	"pathfinder/internal/sim"
)

func main() {
	machine := flag.String("machine", "spr", "machine model: spr or emr")
	quick := flag.Bool("quick", false, "shorter, less precise sweep")
	flag.Parse()

	cfg := sim.SPR()
	if *machine == "emr" {
		cfg = sim.EMR()
	}
	res := experiments.RunMLC(cfg, *quick)
	fmt.Print(res.Table())
}

// Command benchregress gates perf regressions on the profiler hot paths:
// it parses a current `go test -bench` run (stdin or a file argument),
// compares the watched benchmarks against the committed BENCH_*.json
// baseline, and exits nonzero when any ns/op grew beyond the tolerance
// (see `make bench-regress`).
//
//	go test -run '^$' -bench 'SimCXLStream|CaptureSnapshot' -benchmem . | benchregress
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pathfinder/internal/benchparse"
)

func main() {
	baseline := flag.String("baseline", "", "baseline BENCH_*.json (default: latest in the current directory)")
	watch := flag.String("watch", "BenchmarkSimCXLStream,BenchmarkCaptureSnapshot",
		"comma-separated benchmark names to gate")
	tolerance := flag.Float64("tolerance", 0.20, "allowed ns/op growth fraction")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cur, err := benchparse.Parse(in)
	if err != nil {
		fatal(err)
	}

	basePath := *baseline
	if basePath == "" {
		basePath, err = benchparse.LatestBaseline(".")
		if err != nil {
			fatal(err)
		}
	}
	base, err := benchparse.ReadDoc(basePath)
	if err != nil {
		fatal(err)
	}

	names := strings.Split(*watch, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	regs := benchparse.Compare(base, cur, names, *tolerance)
	if len(regs) == 0 {
		fmt.Printf("benchregress: %d watched benchmarks within %.0f%% of %s\n",
			len(names), *tolerance*100, basePath)
		return
	}
	fmt.Fprintf(os.Stderr, "benchregress: regression vs %s:\n", basePath)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchregress:", err)
	os.Exit(1)
}

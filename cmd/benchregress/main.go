// Command benchregress gates perf regressions on the profiler hot paths:
// it parses a current `go test -bench` run (stdin or a file argument),
// compares the watched benchmarks against the committed BENCH_*.json
// baseline, and exits nonzero when any ns/op grew beyond the tolerance
// (see `make bench-regress`).  -pairs additionally gates Variant=Base
// pairs within the same run (e.g. the tracer-off overhead bound), which
// supports much tighter tolerances than a committed baseline.
//
//	go test -run '^$' -bench 'SimCXLStream|CaptureSnapshot' -benchmem . | benchregress
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pathfinder/internal/benchparse"
)

func main() {
	baseline := flag.String("baseline", "", "baseline BENCH_*.json (default: latest in the current directory)")
	watch := flag.String("watch", "BenchmarkSimCXLStream,BenchmarkCaptureSnapshot,BenchmarkEpochLoop",
		"comma-separated benchmark names to gate")
	tolerance := flag.Float64("tolerance", 0.20, "allowed ns/op growth fraction")
	pairs := flag.String("pairs", "",
		"comma-separated Variant=Base same-run pairs to gate (e.g. BenchmarkSimCXLStreamTracerOff=BenchmarkSimCXLStream)")
	pairTolerance := flag.Float64("pair-tolerance", 0.02,
		"allowed ns/op growth of a pair's variant over its base, same run")
	maxes := flag.String("max", "",
		"comma-separated absolute metric ceilings (Name:metric:limit, e.g. BenchmarkSimCXLStream:B/op:64)")
	lanes := flag.String("lanes", "auto",
		"lane config the current run used (must match the baseline's recorded lanes)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cur, err := benchparse.Parse(in)
	if err != nil {
		fatal(err)
	}

	basePath := *baseline
	if basePath == "" {
		basePath, err = benchparse.LatestBaseline(".")
		if err != nil {
			fatal(err)
		}
	}
	base, err := benchparse.ReadDoc(basePath)
	if err != nil {
		fatal(err)
	}
	// A baseline measured under a different GOMAXPROCS or -lanes policy ran
	// the window scheduler with a different worker-lane count; its ns/op is
	// a different experiment, and "comparing" it would gate on noise.
	cur.Lanes = *lanes
	if err := benchparse.LaneMismatch(base, cur); err != nil {
		fatal(fmt.Errorf("refusing to compare against %s: %w", basePath, err))
	}

	// -watch '' gates pairs/ceilings only (e.g. `make bench-sweep`, whose
	// benchmarks are deliberately absent from the committed baseline).
	var names []string
	if *watch != "" {
		names = strings.Split(*watch, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}
	regs := benchparse.Compare(base, cur, names, *tolerance)

	var pairRegs []benchparse.Regression
	var pairList []string
	if *pairs != "" {
		pairList = strings.Split(*pairs, ",")
		pairRegs, err = benchparse.ComparePairs(cur, pairList, *pairTolerance)
		if err != nil {
			fatal(err)
		}
	}

	var maxRegs []benchparse.Regression
	var maxList []string
	if *maxes != "" {
		maxList = strings.Split(*maxes, ",")
		maxRegs, err = benchparse.CompareMax(cur, maxList)
		if err != nil {
			fatal(err)
		}
	}

	if len(regs) == 0 && len(pairRegs) == 0 && len(maxRegs) == 0 {
		fmt.Printf("benchregress: %d watched benchmarks within %.0f%% of %s",
			len(names), *tolerance*100, basePath)
		if len(pairList) > 0 {
			fmt.Printf("; %d same-run pairs within %.0f%%", len(pairList), *pairTolerance*100)
		}
		if len(maxList) > 0 {
			fmt.Printf("; %d metric ceilings held", len(maxList))
		}
		fmt.Println()
		return
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchregress: regression vs %s:\n", basePath)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
	}
	if len(pairRegs) > 0 {
		fmt.Fprintf(os.Stderr, "benchregress: same-run pair regression (tolerance %.0f%%):\n",
			*pairTolerance*100)
		for _, r := range pairRegs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
	}
	if len(maxRegs) > 0 {
		fmt.Fprintln(os.Stderr, "benchregress: pinned metric ceiling exceeded:")
		for _, r := range maxRegs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchregress:", err)
	os.Exit(1)
}

// Package bench is the benchmark harness that regenerates every table and
// figure of the paper (DESIGN.md's per-experiment index) plus
// micro-benchmarks of the simulator and profiler hot paths and ablations
// of the design choices.  Run with:
//
//	go test -bench=. -benchmem
package bench

import (
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/experiments"
	"pathfinder/internal/mem"
	"pathfinder/internal/obs"
	"pathfinder/internal/pmu"
	"pathfinder/internal/sim"
	"pathfinder/internal/workload"
)

// --- Paper artifacts (E0-E12) ----------------------------------------------

// BenchmarkMLC regenerates the §2.3 latency/bandwidth table (E0).
func BenchmarkMLC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunMLC(sim.SPR(), true)
		b.ReportMetric(r.Rows[0].LatencyNS, "local_ns")
		b.ReportMetric(r.Rows[2].LatencyNS, "cxl_ns")
		b.ReportMetric(r.Rows[2].BandwidthGB, "cxl_GBps")
	}
}

// BenchmarkFig2CorePMU regenerates Figure 2 (E1).
func BenchmarkFig2CorePMU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(sim.SPR(), true)
		if idx := r.WrOnly.MetricIndex("sb_stall_frac"); idx >= 0 {
			b.ReportMetric(r.WrOnly.MeanRatio(idx), "sb_stall_x")
		}
		if idx := r.Main.MetricIndex("cycle_activity.cycles_l1d_miss"); idx >= 0 {
			b.ReportMetric(r.Main.MeanRatio(idx), "l1d_cycles_x")
		}
	}
}

// BenchmarkFig3CHAPMU regenerates Figure 3 (E2).
func BenchmarkFig3CHAPMU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig3(sim.SPR(), true)
		if idx := r.MetricIndex("cycle_activity.stalls_l3_miss"); idx >= 0 {
			b.ReportMetric(r.MeanRatio(idx), "llc_stall_x")
		}
		if idx := r.MetricIndex("llc_miss_drd"); idx >= 0 {
			b.ReportMetric(r.MeanRatio(idx), "drd_miss_x")
		}
	}
}

// BenchmarkFig4UncorePMU regenerates Figure 4 (E3).
func BenchmarkFig4UncorePMU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4(sim.SPR(), true)
		if idx := r.MetricIndex("imc_rpq_occ"); idx >= 0 {
			b.ReportMetric(r.MeanRatio(idx), "imc_rpq_x")
		}
	}
}

// BenchmarkEMRCharacterization regenerates Figures 14-16 (E4).
func BenchmarkEMRCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(sim.EMR(), true)
		if idx := r.Main.MetricIndex("cycle_activity.cycles_l1d_miss"); idx >= 0 {
			b.ReportMetric(r.Main.MeanRatio(idx), "emr_l1d_cycles_x")
		}
	}
}

// BenchmarkTable7PathMap regenerates Table 7 (E5).
func BenchmarkTable7PathMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable7(sim.SPR(), true)
		b.ReportMetric(r.FOTSUncoreHWPF*100, "fots_hwpf_pct")
		b.ReportMetric(r.GCCSReqGrowth, "gccs_growth_x")
	}
}

// BenchmarkFig6StallBreakdown regenerates Figure 6 (E6).
func BenchmarkFig6StallBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig6(sim.SPR(), true)
		b.ReportMetric(r.DownstreamShare()*100, "downstream_pct")
	}
}

// BenchmarkFig7Fig8Interference regenerates Figures 7 and 8 (E7).
func BenchmarkFig7Fig8Interference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig78(sim.SPR(), true)
		b.ReportMetric(r.CoreStallGrowth(), "core_stall_x")
	}
}

// BenchmarkFig9Fig10Contention regenerates Figures 9 and 10 (E8).
func BenchmarkFig9Fig10Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig910(sim.SPR(), true)
		b.ReportMetric(r.ThroughputDrop()*100, "tput_drop_pct")
		b.ReportMetric(r.FlexLatencyGrowth(), "flexlat_x")
	}
}

// BenchmarkFig11Bandwidth regenerates Figure 11 (E9).
func BenchmarkFig11Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.RunFig11(sim.SPR(), true)
		b.ReportMetric(rs[0].Pearson, "mbw_pearson")
		b.ReportMetric(rs[1].Pearson, "gups_pearson")
	}
}

// BenchmarkFig12Locality regenerates Figure 12 (E10).
func BenchmarkFig12Locality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig12(sim.SPR(), true)
		b.ReportMetric(float64(len(r.Runs)), "scenarios")
	}
}

// BenchmarkFig13TPP regenerates Figure 13 / Case 7 (E11).
func BenchmarkFig13TPP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig13(sim.SPR(), true)
		if r.Apps[1].OpsOff > 0 {
			b.ReportMetric(r.Apps[1].OpsOn/r.Apps[1].OpsOff, "gups_speedup_x")
		}
		if r.ColloidOps > 0 {
			b.ReportMetric(r.GuidedOps/r.ColloidOps, "guided_x")
		}
	}
}

// BenchmarkProfilerOverhead regenerates the §5.9 overhead numbers (E12).
func BenchmarkProfilerOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunOverhead(sim.SPR(), true)
		b.ReportMetric(r.CPUOverhead*100, "cpu_overhead_pct")
		b.ReportMetric(r.MemOverheadMB, "mem_MB")
	}
}

// --- Micro-benchmarks of the hot paths ---------------------------------------

func benchRig(b *testing.B, node mem.NodeID) (*sim.Machine, workload.Region) {
	b.Helper()
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
	})
	r, err := as.Alloc(64<<20, mem.Fixed(node))
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.SPR()
	cfg.Cores = 4
	cfg.LLCSlices = 8
	cfg.LLCSize = 8 << 20
	return sim.New(cfg, as), workload.Region{Base: r.Base, Size: r.Size}
}

// BenchmarkSimLocalStream measures simulator throughput (ops simulated per
// second) for a local streaming core.
func BenchmarkSimLocalStream(b *testing.B) {
	m, r := benchRig(b, 0)
	g := workload.NewStream(r, 2, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// BenchmarkSimCXLStream measures simulator throughput for a CXL stream.
func BenchmarkSimCXLStream(b *testing.B) {
	m, r := benchRig(b, 1)
	g := workload.NewStream(r, 2, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// BenchmarkSimMultiCoreStream measures throughput with all four cores
// streaming (two local, two CXL).  Per-op cost is higher than the
// single-core streams because concurrent cores schedule events into each
// other's run-ahead windows; this is the fast path's contended case.
func BenchmarkSimMultiCoreStream(b *testing.B) {
	m, r := benchRig(b, 0)
	rc, err := m.AddressSpace().Alloc(64<<20, mem.Fixed(1))
	if err != nil {
		b.Fatal(err)
	}
	cxlReg := workload.Region{Base: rc.Base, Size: rc.Size}
	g := workload.NewStream(r, 2, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	for c := 1; c < 4; c++ {
		reg := r
		if c >= 2 {
			reg = cxlReg
		}
		gc := workload.NewStream(reg, 2, 0.2, uint64(c+10))
		gc.Reuse = 4
		m.Attach(c, gc)
	}
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// BenchmarkSimMultiCoreStreamLanesOff is BenchmarkSimMultiCoreStream with
// the windowed scheduler forced off (every core step dispatched through the
// event engine).  `make bench-regress -pairs` gates the windowed benchmark
// against this same-run twin, so the window scheduler's speedup is measured
// against the machine it actually ran on, not a stale baseline snapshot.
func BenchmarkSimMultiCoreStreamLanesOff(b *testing.B) {
	m, r := benchRig(b, 0)
	m.SetLanes(-1)
	rc, err := m.AddressSpace().Alloc(64<<20, mem.Fixed(1))
	if err != nil {
		b.Fatal(err)
	}
	cxlReg := workload.Region{Base: rc.Base, Size: rc.Size}
	g := workload.NewStream(r, 2, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	for c := 1; c < 4; c++ {
		reg := r
		if c >= 2 {
			reg = cxlReg
		}
		gc := workload.NewStream(reg, 2, 0.2, uint64(c+10))
		gc.Reuse = 4
		m.Attach(c, gc)
	}
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// BenchmarkSimThinkHeavyStream measures a compute-bound core (200 think
// cycles between accesses): long quiet gaps between memory events, the
// run-ahead fast path's best case.
func BenchmarkSimThinkHeavyStream(b *testing.B) {
	m, r := benchRig(b, 0)
	g := workload.NewStream(r, 200, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// BenchmarkCaptureSnapshot measures the cost of a full-machine snapshot
// (formerly BenchmarkSnapshotCapture; the arena capturer recycles snapshots
// through Release, so steady state is allocation-free).
func BenchmarkCaptureSnapshot(b *testing.B) {
	m, r := benchRig(b, 1)
	m.Attach(0, workload.NewStream(r, 2, 0, 1))
	m.Run(500_000)
	cap := core.NewCapturer(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(1000)
		cap.Capture().Release()
	}
}

// BenchmarkPFBuilder measures path-map construction per snapshot.
func BenchmarkPFBuilder(b *testing.B) {
	m, r := benchRig(b, 1)
	m.Attach(0, workload.NewStream(r, 2, 0.2, 1))
	cap := core.NewCapturer(m)
	m.Run(2_000_000)
	s := cap.Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.BuildPathMap(s, []int{0})
	}
}

// BenchmarkPFEstimator measures the back-propagation per snapshot.
func BenchmarkPFEstimator(b *testing.B) {
	m, r := benchRig(b, 1)
	k := core.ConstsFor(m.Config())
	m.Attach(0, workload.NewStream(r, 2, 0.2, 1))
	cap := core.NewCapturer(m)
	m.Run(2_000_000)
	s := cap.Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EstimateStalls(s, []int{0}, 0, k)
	}
}

// BenchmarkPFAnalyzer measures the queue estimation per snapshot.
func BenchmarkPFAnalyzer(b *testing.B) {
	m, r := benchRig(b, 1)
	k := core.ConstsFor(m.Config())
	m.Attach(0, workload.NewStream(r, 2, 0.2, 1))
	cap := core.NewCapturer(m)
	m.Run(2_000_000)
	s := cap.Capture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.AnalyzeQueues(s, []int{0}, 0, k)
	}
}

// BenchmarkAnalyzeQueues measures the wait-time attribution per snapshot.
func BenchmarkAnalyzeQueues(b *testing.B) {
	m, r := benchRig(b, 1)
	k := core.ConstsFor(m.Config())
	m.Attach(0, workload.NewStream(r, 2, 0.2, 1))
	cap := core.NewCapturer(m)
	m.Run(2_000_000)
	s := cap.Capture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.AnalyzeQueues(s, []int{0}, 0, k)
	}
}

// BenchmarkEpochLoop measures one full profiler epoch in steady state:
// capture, path map, stall estimate, queue report, digest, release.  The
// simulator is advanced outside the timed region — this is the profiler's
// per-epoch overhead, the number the snapshot arena exists to shrink.  The
// pre-arena pipeline cost ~214us and ~400 allocs per epoch (SnapshotCapture
// + PFBuilder + PFEstimator + PFAnalyzer in pfbench_full.txt); the arena
// target is >=2x faster at <=2 allocs per epoch.
func BenchmarkEpochLoop(b *testing.B) {
	m, r := benchRig(b, 1)
	k := core.ConstsFor(m.Config())
	m.Attach(0, workload.NewStream(r, 2, 0.2, 1))
	cap := core.NewCapturer(m)
	m.Run(2_000_000)
	plan := core.NewPlan(cap.Index(), []int{0}, 0)
	var pm core.PathMap
	var bd core.StallBreakdown
	var qr core.QueueReport
	buf := make(core.Digest, 0, 4096)
	cap.Capture().Release() // warm the recycler
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cap.Capture()
		plan.BuildPathMapInto(s, &pm)
		plan.EstimateStallsInto(s, k, &bd)
		plan.AnalyzeQueuesInto(s, k, &qr)
		buf = core.AppendDigest(buf[:0], s)
		s.Release()
	}
}

// --- Tracer-off overhead (observability must be free when off) -----------------

// BenchmarkSimCXLStreamTracerOff is BenchmarkSimCXLStream with a request
// tracer attached but disabled: the only extra work on the request path is
// one atomic load.  `make bench-regress` gates this against its untraced
// twin from the same run (<=2% growth) — a same-run pair, so machine drift
// between baseline snapshots cannot mask or fake a regression.
func BenchmarkSimCXLStreamTracerOff(b *testing.B) {
	m, r := benchRig(b, 1)
	m.SetTracer(obs.NewTracer(4096, 64)) // attached, never enabled
	g := workload.NewStream(r, 2, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// BenchmarkSimMultiCoreStreamTracerOff is BenchmarkSimMultiCoreStream with
// a disabled tracer attached, gated as a same-run pair like the others.
func BenchmarkSimMultiCoreStreamTracerOff(b *testing.B) {
	m, r := benchRig(b, 0)
	m.SetTracer(obs.NewTracer(4096, 64)) // attached, never enabled
	rc, err := m.AddressSpace().Alloc(64<<20, mem.Fixed(1))
	if err != nil {
		b.Fatal(err)
	}
	cxlReg := workload.Region{Base: rc.Base, Size: rc.Size}
	g := workload.NewStream(r, 2, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	for c := 1; c < 4; c++ {
		reg := r
		if c >= 2 {
			reg = cxlReg
		}
		gc := workload.NewStream(reg, 2, 0.2, uint64(c+10))
		gc.Reuse = 4
		m.Attach(c, gc)
	}
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// BenchmarkEpochLoopTracerOff is BenchmarkEpochLoop with a disabled tracer
// attached, gated the same way.
func BenchmarkEpochLoopTracerOff(b *testing.B) {
	m, r := benchRig(b, 1)
	m.SetTracer(obs.NewTracer(4096, 64))
	k := core.ConstsFor(m.Config())
	m.Attach(0, workload.NewStream(r, 2, 0.2, 1))
	cap := core.NewCapturer(m)
	m.Run(2_000_000)
	plan := core.NewPlan(cap.Index(), []int{0}, 0)
	var pm core.PathMap
	var bd core.StallBreakdown
	var qr core.QueueReport
	buf := make(core.Digest, 0, 4096)
	cap.Capture().Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cap.Capture()
		plan.BuildPathMapInto(s, &pm)
		plan.EstimateStallsInto(s, k, &bd)
		plan.AnalyzeQueuesInto(s, k, &qr)
		buf = core.AppendDigest(buf[:0], s)
		s.Release()
	}
}

// --- Flight-recorder overhead (always-on must be near-free) --------------------

// BenchmarkSimCXLStreamFlightOff is BenchmarkSimCXLStream with a flight
// recorder attached but disabled: the completion hook costs one nil check
// plus an inlined atomic load.  `make bench-regress` gates this against its
// recorder-free twin from the same run at ≤2% — the flight recorder is
// meant to ride along in production, so its off-cost bound is tighter than
// the tracer's.
func BenchmarkSimCXLStreamFlightOff(b *testing.B) {
	m, r := benchRig(b, 1)
	m.SetFlight(obs.NewFlight(m.Cores(), 4096, 512)) // attached, never enabled
	g := workload.NewStream(r, 2, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// BenchmarkSimMultiCoreStreamFlightOff is BenchmarkSimMultiCoreStream with
// a disabled flight recorder attached, gated as a same-run pair at ≤2%.
func BenchmarkSimMultiCoreStreamFlightOff(b *testing.B) {
	m, r := benchRig(b, 0)
	m.SetFlight(obs.NewFlight(m.Cores(), 4096, 512)) // attached, never enabled
	rc, err := m.AddressSpace().Alloc(64<<20, mem.Fixed(1))
	if err != nil {
		b.Fatal(err)
	}
	cxlReg := workload.Region{Base: rc.Base, Size: rc.Size}
	g := workload.NewStream(r, 2, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	for c := 1; c < 4; c++ {
		reg := r
		if c >= 2 {
			reg = cxlReg
		}
		gc := workload.NewStream(reg, 2, 0.2, uint64(c+10))
		gc.Reuse = 4
		m.Attach(c, gc)
	}
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// BenchmarkSimCXLStreamFlightOn is BenchmarkSimCXLStream with the recorder
// enabled: every completion files a packed record through the per-core
// ring, the quantile sketch, and the histogram.  Gated against the
// FlightOff twin in the same run at 25% — the measured cost is ~18% on
// this stream (the worst case: every op completes a record), and the
// bound catches an accidental allocation or lock-contention regression
// without gating on scheduler noise.
func BenchmarkSimCXLStreamFlightOn(b *testing.B) {
	m, r := benchRig(b, 1)
	fl := obs.NewFlight(m.Cores(), 4096, 512)
	fl.Enable()
	m.SetFlight(fl)
	g := workload.NewStream(r, 2, 0.2, 1)
	g.Reuse = 4
	m.Attach(0, workload.NewLimit(g, uint64(b.N)))
	b.ResetTimer()
	for m.Core(0).Running() {
		m.Run(1_000_000)
	}
}

// --- Checkpoint fork vs scratch sweep (E13, `make bench-sweep`) ---------------

// A warm-heavy 16-point sweep: every config point shares a long warm
// prefix and differs only in a short measured suffix — the shape the
// copy-on-write checkpoint layer exists for.  Scratch re-simulates the
// prefix per point; Forked pays it once, checkpoints, and forks.
const (
	sweepPoints = 16
	sweepWarm   = sim.Cycles(2_000_000)
	sweepSuffix = sim.Cycles(250_000)
)

// sweepBenchRig builds the 4-core mixed local/CXL machine the sweep pair
// forks; every generator is workload.Forkable.
func sweepBenchRig(b *testing.B) *sim.Machine {
	b.Helper()
	as := mem.NewAddressSpace(12, []mem.Node{
		{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
		{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
	})
	local, err := as.Alloc(32<<20, mem.Fixed(0))
	if err != nil {
		b.Fatal(err)
	}
	cxlr, err := as.Alloc(32<<20, mem.Fixed(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.SPR()
	cfg.Cores = 4
	cfg.LLCSlices = 8
	cfg.LLCSize = 8 << 20
	m := sim.New(cfg, as)
	lr := workload.Region{Base: local.Base, Size: local.Size}
	cr := workload.Region{Base: cxlr.Base, Size: cxlr.Size}
	g0 := workload.NewStream(lr, 2, 0.2, 1)
	g0.Reuse = 4
	m.Attach(0, g0)
	g1 := workload.NewStream(cr, 2, 0.2, 2)
	g1.Reuse = 4
	m.Attach(1, g1)
	m.Attach(2, workload.NewGUPS(cr, 1, 0.1, 0.5, 3))
	m.Attach(3, workload.NewPointerChase(lr, 2, 4))
	return m
}

// BenchmarkSweepScratch is the baseline: every point of the 16-point sweep
// re-simulates the warm prefix before its measured suffix.
func BenchmarkSweepScratch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for p := 0; p < sweepPoints; p++ {
			m := sweepBenchRig(b)
			m.Run(sweepWarm + sweepSuffix)
		}
	}
}

// BenchmarkSweepForked warms once, checkpoints, and runs the same 16-point
// sweep by restoring the frozen image into a reused machine per point —
// the steady-state of experiments.Sweep with a warm cache.  The timed fork
// loop must stay at 0 allocs/op: RestoreInto copies into the machine's
// existing buffers.  `make bench-sweep` gates this at ≤0.5x the Scratch
// twin from the same run (the measured ratio is far lower; the warm/suffix
// cycle ratio alone is 9x).
func BenchmarkSweepForked(b *testing.B) {
	src := sweepBenchRig(b)
	src.Run(sweepWarm)
	cp, err := src.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	m := cp.Restore()
	m.Run(sweepSuffix) // grow every reused buffer before the timed region
	if err := cp.RestoreInto(m); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < sweepPoints; p++ {
			if err := cp.RestoreInto(m); err != nil {
				b.Fatal(err)
			}
			m.Run(sweepSuffix)
		}
	}
}

// --- Ablations of DESIGN.md's called-out choices ------------------------------

// BenchmarkAblationPrefetch quantifies the hardware prefetchers' latency
// hiding on a CXL stream: achieved lines per kilocycle with and without.
func BenchmarkAblationPrefetch(b *testing.B) {
	run := func(pf bool) float64 {
		as := mem.NewAddressSpace(12, []mem.Node{
			{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
			{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
		})
		r, _ := as.Alloc(64<<20, mem.Fixed(1))
		cfg := sim.SPR()
		cfg.Cores = 2
		cfg.LLCSlices = 8
		cfg.LLCSize = 8 << 20
		if !pf {
			cfg.L1PFDegree, cfg.L2PFDegree = 0, 0
		}
		m := sim.New(cfg, as)
		g := workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 1, 0, 3)
		g.Reuse = 4
		m.Attach(0, g)
		m.Run(2_000_000)
		m.Sync()
		return float64(m.Bank("cxl0").Read(pmu.CXLDevCASRd)) / 2000
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true), "lines_per_kcyc_pf")
		b.ReportMetric(run(false), "lines_per_kcyc_nopf")
	}
}

// BenchmarkAblationPackBuf quantifies the credit-limited throughput effect
// of the device ingress packing-buffer depth.
func BenchmarkAblationPackBuf(b *testing.B) {
	run := func(entries int) float64 {
		as := mem.NewAddressSpace(12, []mem.Node{
			{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
			{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
		})
		cfg := sim.SPR()
		cfg.Cores = 8
		cfg.LLCSlices = 8
		cfg.LLCSize = 8 << 20
		cfg.PackBufEntries = entries
		m := sim.New(cfg, as)
		for c := 0; c < 8; c++ {
			r, _ := as.Alloc(16<<20, mem.Fixed(1))
			m.Attach(c, workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 0, 0, uint64(c+1)))
		}
		m.Run(2_000_000)
		m.Sync()
		return float64(m.Bank("cxl0").Read(pmu.CXLDevCASRd)) * 64 / 1e-3 / 1e9
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(8), "GBps_8credits")
		b.ReportMetric(run(48), "GBps_48credits")
	}
}

// BenchmarkAblationSBDrain quantifies the in-order store-commit constraint:
// SB-full stall share with a fast versus slow drain.
func BenchmarkAblationSBDrain(b *testing.B) {
	run := func(drain sim.Cycles) float64 {
		as := mem.NewAddressSpace(12, []mem.Node{
			{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
			{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
		})
		r, _ := as.Alloc(32<<20, mem.Fixed(1))
		cfg := sim.SPR()
		cfg.Cores = 2
		cfg.LLCSlices = 8
		cfg.LLCSize = 8 << 20
		cfg.SBDrainCycles = drain
		m := sim.New(cfg, as)
		g := workload.NewStream(workload.Region{Base: r.Base, Size: r.Size}, 1, 1.0, 5)
		g.Reuse = 2
		m.Attach(0, g)
		m.Run(1_500_000)
		m.Sync()
		bank := m.Core(0).Bank()
		clk := float64(bank.Read(pmu.CPUClkUnhalted))
		if clk == 0 {
			return 0
		}
		return float64(bank.Read(pmu.ResourceStallsSB)+bank.Read(pmu.ExeBoundOnStores)) / clk
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(1), "stall_frac_fast")
		b.ReportMetric(run(8), "stall_frac_slow")
	}
}

// --- Extension benchmarks ------------------------------------------------------

// BenchmarkBaselineTMA runs the TMA-vs-PathFinder comparison (the prior
// solution of §2.3 implemented as the baseline).
func BenchmarkBaselineTMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunTMABaseline(sim.SPR(), true)
		// The CXL row's PathFinder CXL-wait share, in percent.
		b.ReportMetric(r.Rows[1].PFCXLFraction*100, "pf_cxl_pct")
		b.ReportMetric(r.Rows[1].TMADRAMBound*100, "tma_dram_pct")
	}
}

// BenchmarkPooledDevices measures bandwidth scaling from one to two pooled
// CXL devices.
func BenchmarkPooledDevices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunPool(sim.SPR(), true)
		b.ReportMetric(r.Bandwidth[0], "GBps_1dev")
		b.ReportMetric(r.Bandwidth[1], "GBps_2dev")
	}
}

// BenchmarkAblationSNC quantifies sub-NUMA clustering: with two clusters,
// a thread's LLC hits split between the near and distant cluster (the
// "snc LLC" serves of Table 7); with clustering off they are all near.
func BenchmarkAblationSNC(b *testing.B) {
	run := func(clusters int) (snc, local float64) {
		as := mem.NewAddressSpace(12, []mem.Node{
			{ID: 0, Kind: mem.LocalDRAM, Capacity: 8 << 30},
			{ID: 1, Kind: mem.CXLDRAM, Device: 0, Capacity: 8 << 30},
		})
		r, _ := as.Alloc(4<<20, mem.Fixed(1))
		cfg := sim.SPR()
		cfg.Cores = 4
		cfg.LLCSlices = 8
		cfg.LLCSize = 16 << 20 // the working set fits: LLC hits dominate
		cfg.SNCClusters = clusters
		m := sim.New(cfg, as)
		// Warm the LLC, then chase within it.
		g := workload.NewPointerChase(workload.Region{Base: r.Base, Size: r.Size}, 1, 3)
		m.Attach(0, workload.NewLimit(g, 300_000))
		for m.Core(0).Running() {
			m.Run(5_000_000)
		}
		m.Sync()
		bank := m.Core(0).Bank()
		return float64(bank.Read(pmu.MemLoadL3HitRetired[2])), // xsnp_no_fwd: distant cluster
			float64(bank.Read(pmu.MemLoadL3HitRetired[0])) // xsnp_none: near slice
	}
	for i := 0; i < b.N; i++ {
		snc2, near2 := run(2)
		snc1, _ := run(1)
		if near2+snc2 > 0 {
			b.ReportMetric(snc2/(near2+snc2)*100, "snc_share_pct")
		}
		b.ReportMetric(snc1, "snc_hits_off")
	}
}

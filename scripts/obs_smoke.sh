#!/bin/sh
# obs_smoke.sh - end-to-end check of the introspection server: start
# `pathfinder -serve` on a random port, require 200s with real content from
# /metrics and /status, then shut the server down.  Run from the repo root
# (CI's obs-smoke step and `make obs-smoke` both do).
set -eu

log=$(mktemp)
bin=$(mktemp)
bundle=$(mktemp)
trap 'kill $pid 2>/dev/null || true; rm -f "$log" "$bin" "$bundle"' EXIT

# Two apps on parallel lanes (no tracing: an enabled tracer forces the
# sequential sweep) so the window scheduler demonstrably opens windows.
# The flight recorder rides along at its default sizing and dumps its
# postmortem bundle to $bundle on SIGQUIT.
go build -o "$bin" ./cmd/pathfinder
"$bin" -serve 127.0.0.1:0 -apps LBM:cxl,MCF:local -lanes 2 -epochs 2 \
    -epoch-kcycles 200 -report flows -flight-dump "$bundle" >"$log" 2>&1 &
pid=$!

# The bound address is printed as "pathfinder: serving on http://HOST:PORT".
url=""
for _ in $(seq 1 50); do
    url=$(sed -n 's/^pathfinder: serving on \(http:\/\/[^ ]*\)$/\1/p' "$log" | head -1)
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: pathfinder exited early:"; cat "$log"; exit 1; }
    sleep 0.2
done
[ -n "$url" ] || { echo "obs-smoke: no serving line in output:"; cat "$log"; exit 1; }

fail() { echo "obs-smoke: $1"; cat "$log"; exit 1; }

code=$(curl -s -o /tmp/obs_smoke_metrics -w '%{http_code}' "$url/metrics")
[ "$code" = 200 ] || fail "/metrics returned $code"
grep -q '^pf_' /tmp/obs_smoke_metrics || fail "/metrics has no pf_ series (empty registry)"

# The run-ahead fast path must be live: inline steps exported and non-zero
# (a zero here means every op went through the event engine).
inline=$(sed -n 's/^pf_engine_inline_steps \([0-9][0-9]*\)$/\1/p' /tmp/obs_smoke_metrics)
[ -n "$inline" ] || fail "/metrics lacks pf_engine_inline_steps"
[ "$inline" -gt 0 ] || fail "pf_engine_inline_steps is 0 (run-ahead fast path inactive)"
grep -q '^pf_engine_dispatched_events ' /tmp/obs_smoke_metrics || \
    fail "/metrics lacks pf_engine_dispatched_events"

# The window scheduler must be live under -lanes 2: barrier merges
# exported and non-zero, the window-span histogram populated, and busy
# time attributed to at least lane 0.
merges=$(sed -n 's/^pf_engine_barrier_merges \([0-9][0-9]*\)$/\1/p' /tmp/obs_smoke_metrics)
[ -n "$merges" ] || fail "/metrics lacks pf_engine_barrier_merges"
[ "$merges" -gt 0 ] || fail "pf_engine_barrier_merges is 0 (window scheduler inactive under -lanes 2)"
wincount=$(sed -n 's/^pf_engine_window_cycles_count \([0-9][0-9]*\)$/\1/p' /tmp/obs_smoke_metrics)
[ -n "$wincount" ] || fail "/metrics lacks pf_engine_window_cycles histogram"
[ "$wincount" -gt 0 ] || fail "pf_engine_window_cycles histogram is empty"
grep -q '^pf_engine_lane_busy_ns{lane="0"} ' /tmp/obs_smoke_metrics || \
    fail "/metrics lacks per-lane pf_engine_lane_busy_ns counters"

code=$(curl -s -o /tmp/obs_smoke_status -w '%{http_code}' "$url/status")
[ "$code" = 200 ] || fail "/status returned $code"
grep -q '"epochs"' /tmp/obs_smoke_status || fail "/status JSON lacks epoch fields"
grep -q '"inline_steps"' /tmp/obs_smoke_status || fail "/status JSON lacks engine section"
grep -q '"barrier_merges"' /tmp/obs_smoke_status || fail "/status JSON lacks window scheduler fields"
grep -q '"lanes": *2' /tmp/obs_smoke_status || fail "/status does not report the configured lane count"

# The flight recorder must be live: /flight serves its snapshot with real
# records filed by the run.
code=$(curl -s -o /tmp/obs_smoke_flight -w '%{http_code}' "$url/flight")
[ "$code" = 200 ] || fail "/flight returned $code"
grep -q '"enabled": *true' /tmp/obs_smoke_flight || fail "/flight reports the recorder disabled"
grep -q '"records"' /tmp/obs_smoke_flight || fail "/flight JSON lacks a records count"
records=$(sed -n 's/.*"records": *\([0-9][0-9]*\).*/\1/p' /tmp/obs_smoke_flight | head -1)
[ -n "$records" ] && [ "$records" -gt 0 ] || fail "/flight shows zero records after a run"

# SIGQUIT dumps a postmortem bundle (and keeps the process running): the
# artifact must appear at -flight-dump and parse as a schema-1 bundle.
kill -QUIT "$pid"
for _ in $(seq 1 50); do
    grep -q '^pathfinder: flight bundle (sigquit) written' "$log" && break
    kill -0 "$pid" 2>/dev/null || fail "pathfinder died on SIGQUIT"
    sleep 0.2
done
grep -q '^pathfinder: flight bundle (sigquit) written' "$log" || fail "no flight-bundle notice after SIGQUIT"
kill -0 "$pid" 2>/dev/null || fail "SIGQUIT terminated the process (want dump-and-continue)"
[ -s "$bundle" ] || fail "SIGQUIT bundle $bundle is missing or empty"
grep -q '"schema": *1' "$bundle" || fail "bundle lacks the schema marker"
grep -q '"trigger": *"sigquit"' "$bundle" || fail "bundle trigger is not sigquit"
grep -q '"flight"' "$bundle" || fail "bundle lacks the flight section"
grep -q '"tail"' "$bundle" || fail "bundle lacks the promoted tail store"

# Graceful shutdown: SIGTERM drains and exits 0 rather than being killed.
# Wait for the run to finish first — the signal handler is installed once
# the post-run serving loop begins.
for _ in $(seq 1 50); do
    grep -q '^pathfinder: run complete' "$log" && break
    sleep 0.2
done
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
[ "$rc" = 0 ] || fail "SIGTERM exit status $rc (want clean drain)"
grep -q '^pathfinder: shutting down' "$log" || fail "no graceful-shutdown line after SIGTERM"

echo "obs-smoke: OK ($url: /metrics has $(grep -c '^pf_' /tmp/obs_smoke_metrics) pf_ series)"
